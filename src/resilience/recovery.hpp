// Shrink-and-replan recovery on top of the simulated cluster — the
// ULFM-style (MPI_Comm_shrink) failure model, made natural by CA3DMM's
// defining property: the grid solver produces a near-optimal plan for
// *arbitrary* P, so after losing ranks the surviving count is just another
// valid process count to plan for.
//
// A ResilientRunner owns successive Cluster instances. Each attempt runs
// the caller's rank_main on the current survivor set; when Cluster::run
// throws an aggregated ca3dmm::Error, the runner harvests the
// rank-attributed failure set, shrinks the world — whole nodes for
// node-level faults (straggler reclassification), individual ranks for
// kill-style faults — remaps the fault plan onto the shrunk numbering, and
// retries under a bounded RetryPolicy. rank_main must derive every layout
// and plan from world.size(), so replanning at the survivor count is
// automatic (see docs/RESILIENCE.md).
//
// Shrinking renumbers survivors contiguously, like MPI_Comm_shrink, but the
// *physical* node placement is pinned: each attempt runs on
// Topology::restricted_to(survivors), which keeps every survivor on the
// node (and cluster) it occupied before the shrink. Re-deriving placement
// from the contiguous order (node_of_rank = r / ranks_per_node) would
// silently migrate survivors onto the dead node's slots — straggler faults,
// degraded-node attribution, and trace pids would all point at the wrong
// physical node. Determinism: all attempt runtimes and the configured
// backoff are virtual time, so a recovered run's reported latency is
// reproducible bit for bit.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "simmpi/cluster.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm::resilience {

/// Bounds the shrink-and-replan retry loop.
struct RetryPolicy {
  /// Total attempts, including the first (1 = no recovery, fail fast).
  int max_attempts = 3;
  /// Virtual-time penalty charged per retry (failure detection + respawn +
  /// replan on a real system). Accounted into RecoveryReport::backoff_s and
  /// total_vtime(); deterministic like every other virtual cost.
  double backoff_s = 0.0;
};

/// What happened in one attempt.
struct AttemptRecord {
  int attempt = 0;            ///< 1-based
  int nranks = 0;             ///< world size of this attempt
  bool ok = false;
  double vtime = 0;           ///< aggregate virtual time of the attempt
  std::string error;          ///< aggregated error ("" when ok)
  /// Failed ranks in ORIGINAL world numbering (the ranks excluded before
  /// the next attempt). Empty for the successful attempt.
  std::vector<int> failed_world_ranks;
  /// PHYSICAL node ids the straggler policy degraded (stable across
  /// shrinks: the attempt topology pins survivors to their original nodes).
  std::vector<int> degraded_nodes;
};

struct RecoveryReport {
  bool ok = false;
  std::vector<AttemptRecord> attempts;
  int final_nranks = 0;
  double backoff_s = 0;  ///< total backoff charged across retries
  /// Survivors of the final attempt, in original world numbering (index =
  /// final world rank).
  std::vector<int> surviving_world_ranks;
  /// Aggregate stats of the final (successful) attempt.
  simmpi::RankStats final_stats;

  /// End-to-end recovery latency: every attempt's virtual time plus the
  /// charged backoff. For a fault-free run this is just the run's vtime.
  double total_vtime() const {
    double t = backoff_s;
    for (const AttemptRecord& a : attempts) t += a.vtime;
    return t;
  }
  int attempts_used() const { return static_cast<int>(attempts.size()); }
};

/// Runs rank_main with shrink-and-replan recovery. Not reusable
/// concurrently; run() may be called repeatedly (each call starts from the
/// full original world).
class ResilientRunner {
 public:
  /// Homogeneous world of `nranks` ranks on `machine`.
  ResilientRunner(int nranks, simmpi::Machine machine, RetryPolicy policy = {});
  /// Explicit (possibly heterogeneous) topology; attempts shrink it with
  /// Topology::restricted_to, preserving physical node/cluster placement.
  explicit ResilientRunner(simmpi::Topology topo, RetryPolicy policy = {});

  /// Fault plan injected into attempt 1; remapped (kills/flips/stragglers
  /// translated to the shrunk numbering, entries for removed ranks/nodes
  /// dropped) for later attempts.
  void set_fault_plan(simmpi::FaultPlan plan) { faults_ = std::move(plan); }
  void set_straggler_policy(simmpi::StragglerPolicy p) { straggler_ = p; }
  void set_validation(bool on) { validation_ = on; }
  void set_trace(const simmpi::TraceConfig& cfg) { trace_ = cfg; }

  /// Runs rank_main until it succeeds or the retry budget is exhausted.
  /// On success returns the report; on exhaustion (or an unshrinkable
  /// failure: watchdog deadlock with no rank attribution, or a collectively
  /// raised error that marks every rank failed without a degraded node —
  /// i.e. a deterministic input error that shrinking cannot fix) throws a
  /// ca3dmm::Error that carries the original rank-attributed message. The
  /// report of the failed run stays readable via report().
  RecoveryReport run(const std::function<void(simmpi::Comm&)>& rank_main);

  const RecoveryReport& report() const { return report_; }
  /// Cluster of the most recent attempt (valid after run()).
  simmpi::Cluster& cluster() { return *cluster_; }

 private:
  int nranks_;
  simmpi::Topology topo_;  ///< full original world; attempts restrict it
  RetryPolicy policy_;
  simmpi::FaultPlan faults_;
  simmpi::StragglerPolicy straggler_;
  bool validation_ = false;
  simmpi::TraceConfig trace_;
  std::unique_ptr<simmpi::Cluster> cluster_;
  RecoveryReport report_;
};

}  // namespace ca3dmm::resilience
