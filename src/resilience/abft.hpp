// ABFT checksum codec for point-to-point messages (Huang–Abraham style
// algorithm-based fault tolerance, adapted to bit-exact integer parity).
//
// The classical ABFT scheme of Huang & Abraham augments matrix operands
// with floating-point row/column checksums. Summing doubles is not
// bit-exact, so a corrupted-then-corrected tile would no longer be
// bit-identical to a clean run — and bit-identical recovery is this
// repository's acceptance bar. We therefore protect the *transport* of the
// tiles instead of their algebra, with XOR parity over bytes:
//
//   trailer byte 0      X_all  = XOR of all payload bytes
//   trailer byte 1 + b  X_b    = XOR of payload bytes whose (index + 1) has
//                                bit b set, for b in [0, bits), where bits
//                                is the number of bits needed to represent
//                                the payload size
//
// Indexing positions from 1 makes every payload position participate in at
// least one positional parity, so a corrupted payload byte is
// distinguishable from a corrupted X_all trailer byte. Decoding computes
// the same XORs over the received payload and XORs them against the
// received trailer, giving syndromes S_all, S_0..S_{bits-1}:
//
//   * all zero                               -> clean
//   * S_all != 0, every nonzero S_b == S_all -> payload byte at position
//     (bitmask of nonzero S_b) - 1 took the error; XOR S_all back in to
//     correct it (Hamming-style locate + correct, exact for any single
//     corrupted byte — FaultPlan::FlipPayload flips one byte)
//   * S_all != 0, all S_b == 0               -> the X_all trailer byte was
//     hit; payload intact
//   * S_all == 0, exactly one S_b != 0       -> one positional trailer byte
//     was hit; payload intact
//   * anything else                          -> >= 2 corrupted bytes,
//     uncorrectable: the caller raises an error (detection never silently
//     degrades to wrong data)
//
// Overhead: 1 + ceil(log2(payload_bytes + 1)) trailer bytes per message
// (14 bytes for a 4 KiB tile) plus one encode scan at the sender and one
// decode scan at the receiver, both memory-bandwidth bound
// (Comm::charge_local_work prices them; costmodel::predict mirrors the
// charge). abft_trailer_bytes is monotonic in the payload size, which the
// cost model relies on when mirroring max(send, recv) message sizes.
#pragma once

#include <cstring>

#include "common/partition.hpp"

namespace ca3dmm::resilience {

/// Trailer bytes protecting a payload of `payload_bytes` (0 for an empty
/// payload). Monotonically non-decreasing in payload_bytes.
inline i64 abft_trailer_bytes(i64 payload_bytes) {
  if (payload_bytes <= 0) return 0;
  int bits = 0;
  while ((payload_bytes >> bits) != 0) ++bits;
  return 1 + bits;
}

/// Trailer size rounded up to whole elements of `esize` bytes — the unit in
/// which a typed tile buffer is enlarged to carry its trailer. Unused pad
/// bytes inside the last element are transmitted but carry no information:
/// a flip landing there decodes as clean, and the payload is untouched.
inline i64 abft_trailer_elems(i64 payload_elems, i64 esize) {
  const i64 tb = abft_trailer_bytes(payload_elems * esize);
  return (tb + esize - 1) / esize;
}

/// Writes the checksum trailer of payload[0..payload_bytes) into
/// trailer[0..abft_trailer_bytes(payload_bytes)).
void abft_encode(const void* payload, i64 payload_bytes, void* trailer);

enum class AbftOutcome {
  kClean,          ///< syndromes zero: nothing was corrupted
  kCorrected,      ///< single payload byte corrected in place
  kTrailerHit,     ///< a trailer byte was corrupted; payload intact
  kUncorrectable,  ///< >= 2 corrupted bytes; payload must not be trusted
};

struct AbftDecodeResult {
  AbftOutcome outcome = AbftOutcome::kClean;
  i64 offset = -1;          ///< corrected payload byte (kCorrected only)
  unsigned char delta = 0;  ///< XOR mask removed from that byte
};

/// Verifies payload[0..payload_bytes) against its received trailer,
/// correcting a single corrupted payload byte in place.
AbftDecodeResult abft_decode(void* payload, i64 payload_bytes,
                             const void* trailer);

// ---- typed-tile helpers: trailer appended after the payload elements ----

/// Message length in elements for a protected tile of `payload_elems`.
template <typename T>
i64 abft_msg_elems(i64 payload_elems) {
  return payload_elems +
         abft_trailer_elems(payload_elems, static_cast<i64>(sizeof(T)));
}

/// Encodes buf[0..payload_elems) and writes the trailer (plus deterministic
/// zero padding up to the element boundary) at buf[payload_elems..).
template <typename T>
void abft_encode_msg(T* buf, i64 payload_elems) {
  if (payload_elems <= 0) return;
  const i64 payload_bytes = payload_elems * static_cast<i64>(sizeof(T));
  const i64 pad_elems =
      abft_trailer_elems(payload_elems, static_cast<i64>(sizeof(T)));
  unsigned char* tr =
      reinterpret_cast<unsigned char*>(buf + payload_elems);
  std::memset(tr, 0, static_cast<size_t>(pad_elems) * sizeof(T));
  abft_encode(buf, payload_bytes, tr);
}

/// Decodes a received message of abft_msg_elems<T>(payload_elems) elements.
template <typename T>
AbftDecodeResult abft_decode_msg(T* buf, i64 payload_elems) {
  if (payload_elems <= 0) return AbftDecodeResult{};
  return abft_decode(buf, payload_elems * static_cast<i64>(sizeof(T)),
                     buf + payload_elems);
}

}  // namespace ca3dmm::resilience
