#include "engine/engine.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace ca3dmm::engine {

using simmpi::Comm;
using simmpi::PoolScope;

namespace {

size_t mix(size_t h, size_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

}  // namespace

size_t PgemmEngine::PlanKeyHash::operator()(const PlanKey& key) const {
  size_t h = std::hash<i64>{}(key.m);
  h = mix(h, std::hash<i64>{}(key.n));
  h = mix(h, std::hash<i64>{}(key.k));
  h = mix(h, std::hash<int>{}(key.nranks));
  const Ca3dmmOptions& o = key.opt;
  h = mix(h, std::hash<bool>{}(o.use_summa));
  h = mix(h, std::hash<i64>{}(o.min_kblk));
  h = mix(h, std::hash<bool>{}(o.abft));
  h = mix(h, std::hash<bool>{}(o.overlap));
  h = mix(h, std::hash<double>{}(o.grid.l));
  h = mix(h, std::hash<bool>{}(o.grid.cannon_compatible));
  h = mix(h, std::hash<i64>{}(o.grid.max_memory_elems));
  h = mix(h, std::hash<double>{}(o.grid.flop_word_ratio));
  h = mix(h, std::hash<size_t>{}(o.k_weights.size()));
  for (const double wt : o.k_weights) h = mix(h, std::hash<double>{}(wt));
  if (o.force_grid) {
    h = mix(h, std::hash<int>{}(o.force_grid->pm));
    h = mix(h, std::hash<int>{}(o.force_grid->pn));
    h = mix(h, std::hash<int>{}(o.force_grid->pk));
  }
  if (o.coll) {
    const simmpi::CollectiveConfig& cc = *o.coll;
    h = mix(h, std::hash<int>{}(static_cast<int>(cc.allgather)));
    h = mix(h, std::hash<int>{}(static_cast<int>(cc.reduce_scatter)));
    h = mix(h, std::hash<int>{}(static_cast<int>(cc.bcast)));
    h = mix(h, std::hash<int>{}(static_cast<int>(cc.allreduce)));
    h = mix(h, std::hash<i64>{}(cc.small_message_bytes));
    h = mix(h, std::hash<int>{}(static_cast<int>(cc.data_movement)));
  }
  return h;
}

PgemmEngine::PgemmEngine(Comm& world, EngineConfig cfg)
    : world_(world.dup()),
      cfg_(cfg),
      owner_ctx_(simmpi::current_ctx()),
      pool_(cfg.pool_max_idle_bytes) {
  pool_.set_footprint_budget(cfg.pool_footprint_budget_bytes);
  CA_REQUIRE(world_.valid(), "PgemmEngine needs a valid communicator");
  // Bind the engine mutex to the cluster so fiber callers park through the
  // scheduler instead of blocking their worker thread (see CoopMutex).
  mu_.bind(world_.cluster());
  CA_REQUIRE(cfg_.plan_cache_capacity >= 1,
             "plan_cache_capacity must be >= 1, got %zu",
             cfg_.plan_cache_capacity);
  // Initial snapshot of the tuning DB (see EngineConfig::tuning_db for the
  // cross-rank consistency contract at construction time).
  if (cfg_.tuning_db)
    for (const tuner::TuningEntry& e : cfg_.tuning_db->entries())
      tuned_view_[e.key] = e;
}

std::vector<tuner::TuningKey> PgemmEngine::refresh_tuning() {
  std::lock_guard<simmpi::CoopMutex> lock(mu_);
  simmpi::RankCtxScope adopt(owner_ctx_);
  std::vector<tuner::TuningKey> changed;
  if (!cfg_.tuning_db) return changed;
  // Rank 0's view of the DB is the one everybody adopts: serialize under
  // the DB's own lock, broadcast the bytes, parse locally. Snapshots are
  // identical by construction even with a concurrent writer.
  std::string blob;
  if (world_.rank() == 0) blob = cfg_.tuning_db->serialize();
  i64 sz = static_cast<i64>(blob.size());
  world_.bcast(&sz, 1, 0);
  blob.resize(static_cast<size_t>(sz));
  if (sz > 0) world_.bcast_bytes(blob.data(), sz, 0);
  tuner::TuningDb parsed;
  std::map<tuner::TuningKey, tuner::TuningEntry> next;
  if (parsed.deserialize(blob, "refresh_tuning broadcast"))
    for (const tuner::TuningEntry& e : parsed.entries()) next[e.key] = e;
  for (const auto& [key, e] : next) {
    auto it = tuned_view_.find(key);
    if (it == tuned_view_.end() || !(it->second == e)) changed.push_back(key);
  }
  for (const auto& [key, e] : tuned_view_)
    if (next.find(key) == next.end()) changed.push_back(key);
  tuned_view_ = std::move(next);
  return changed;
}

const tuner::TuningEntry* PgemmEngine::tuned_entry_locked(
    i64 m, i64 n, i64 k, const Ca3dmmOptions& opt) const {
  if (!cfg_.tuning_db) return nullptr;
  if (opt.force_grid || opt.coll || opt.use_summa) return nullptr;
  const auto it = tuned_view_.find(
      tuner::make_key(m, n, k, world_.size(), world_.topology()));
  if (it == tuned_view_.end() || it->second.stale) return nullptr;
  return &it->second;
}

std::optional<tuner::TunedConfig> PgemmEngine::tuned_for(
    i64 m, i64 n, i64 k, const Ca3dmmOptions& opt) const {
  std::lock_guard<simmpi::CoopMutex> lock(mu_);
  const tuner::TuningEntry* e = tuned_entry_locked(m, n, k, opt);
  if (!e) return std::nullopt;
  return e->config;
}

PgemmEngine::Entry& PgemmEngine::lookup(const PlanKey& key) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.plan_hits;
    stats_.splits_saved += lru_.front().splits_per_call;
    simmpi::trace_marker("engine:plan hit");
    return lru_.front();
  }
  // Miss: plan and split the communicators (collective — every rank misses
  // on the same request of the same stream).
  ++stats_.plan_misses;
  simmpi::trace_marker("engine:plan miss");
  Entry e;
  e.key = key;
  // The cache stays keyed by the *requested* options (is_cached and the
  // service's pricing see the request stream), but the plan itself is built
  // from the tuning-DB config when a fresh entry covers this key.
  Ca3dmmOptions build_opt = key.opt;
  if (cfg_.tuning_db) {
    const bool tunable =
        !key.opt.force_grid && !key.opt.coll && !key.opt.use_summa;
    const tuner::TuningEntry* te =
        tuned_entry_locked(key.m, key.n, key.k, key.opt);
    if (te) {
      build_opt.force_grid = te->config.grid;
      build_opt.coll = te->config.coll;
      build_opt.overlap = te->config.overlap;
      e.tuned = true;
      e.tkey = te->key;
      e.tuned_validated_s = te->validated_s;
      ++stats_.tuned_plans;
      simmpi::trace_marker("engine:plan tuned");
    } else if (tunable && cfg_.tune_on_miss && world_.rank() == 0) {
      cfg_.tuning_db->request_tune(key.m, key.n, key.k, key.nranks,
                                   world_.machine());
    }
  }
  simmpi::trace_marker("engine:plan build");
  e.plan = Ca3dmmPlan::make(key.m, key.n, key.k, key.nranks, build_opt);
  e.comms = PlanComms::make(world_, e.plan);
  const RankCoord co = e.plan.coord(world_.rank());
  e.splits_per_call =
      1 + (co.active ? 1 + (e.plan.c() > 1 ? 1 : 0) +
                           (e.plan.grid().pk > 1 ? 1 : 0)
                     : 0);
  lru_.push_front(std::move(e));
  index_[lru_.front().key] = lru_.begin();
  while (lru_.size() > cfg_.plan_cache_capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.plan_evictions;
    simmpi::trace_marker("engine:plan evict");
  }
  return lru_.front();
}

const Ca3dmmPlan& PgemmEngine::plan_for(i64 m, i64 n, i64 k,
                                        const Ca3dmmOptions& opt) {
  std::lock_guard<simmpi::CoopMutex> lock(mu_);
  simmpi::RankCtxScope adopt(owner_ctx_);
  return lookup(PlanKey{m, n, k, world_.size(), opt}).plan;
}

bool PgemmEngine::is_cached(i64 m, i64 n, i64 k,
                            const Ca3dmmOptions& opt) const {
  std::lock_guard<simmpi::CoopMutex> lock(mu_);
  return index_.count(PlanKey{m, n, k, world_.size(), opt}) != 0;
}

i64 PgemmEngine::trim_pool(i64 target_idle_bytes) {
  std::lock_guard<simmpi::CoopMutex> lock(mu_);
  return pool_.trim(target_idle_bytes);
}

EngineStats PgemmEngine::stats() const {
  std::lock_guard<simmpi::CoopMutex> lock(mu_);
  EngineStats s = stats_;
  s.pool = pool_.stats();
  return s;
}

size_t PgemmEngine::cached_plans() const {
  std::lock_guard<simmpi::CoopMutex> lock(mu_);
  return lru_.size();
}

void PgemmEngine::clear() {
  std::lock_guard<simmpi::CoopMutex> lock(mu_);
  lru_.clear();
  index_.clear();
  pool_.trim();
}

template <typename T>
PgemmEngine::PlanKey PgemmEngine::key_of(const Request<T>& req) const {
  return PlanKey{req.m, req.n, req.k, world_.size(), req.opt};
}

template <typename T>
void PgemmEngine::execute(Entry& entry, const Request<T>& req) {
  CA_REQUIRE(req.a_layout != nullptr && req.b_layout != nullptr &&
                 req.c_layout != nullptr,
             "engine request needs all three layouts set");
  // All work buffers of the whole call tree (driver, 2-D engine,
  // redistribution) draw from the engine's pool while this scope is active.
  // PoolScope's destructor detaches the pool on any exit path, so an
  // aborted multiply cannot leave later allocations drawing from it.
  PoolScope scope(&pool_);
  const bool observe =
      entry.tuned && cfg_.tuned_stale_rtol > 0 && cfg_.tuning_db != nullptr;
  const double t0 = observe ? world_.now() : 0;
  try {
    ca3dmm_multiply<T>(world_, entry.plan, entry.comms, req.trans_a,
                       req.trans_b, *req.a_layout, req.a, *req.b_layout,
                       req.b, *req.c_layout, req.c);
  } catch (const Error&) {
    // The entry's communicators may have collectives half-rendezvoused on
    // peers that died (or, for a validation error, an inconsistent request
    // stream behind them): drop the plan so the next submission re-splits
    // fresh communicators instead of reusing poisoned state. ClusterAborted
    // unwinds (peer-failure case) are not caught here — those ranks are torn
    // down by the cluster, never reused.
    const PlanKey key = entry.key;
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.erase(it->second);
      index_.erase(it);
    }
    ++stats_.plan_invalidations;
    simmpi::trace_marker("engine:plan invalidate");
    throw;
  }
  ++stats_.requests;
  if (observe) {
    // Executed-drift feedback (EngineConfig::tuned_stale_rtol): rank 0's
    // measurement is broadcast so the staleness decision — which mutates
    // shared cache state — is bit-identical on every rank.
    double executed_s = world_.now() - t0;
    world_.bcast(&executed_s, 1, 0);
    const double ref = entry.tuned_validated_s;
    if (ref > 0 && std::abs(executed_s - ref) / ref > cfg_.tuned_stale_rtol) {
      const PlanKey key = entry.key;          // entry dies with the erase
      const tuner::TuningKey tkey = entry.tkey;
      if (world_.rank() == 0) {
        cfg_.tuning_db->mark_stale(tkey);
        if (cfg_.tune_on_miss)
          cfg_.tuning_db->request_tune(key.m, key.n, key.k, key.nranks,
                                       world_.machine());
      }
      auto vt = tuned_view_.find(tkey);
      if (vt != tuned_view_.end()) vt->second.stale = true;
      auto it = index_.find(key);
      if (it != index_.end()) {
        lru_.erase(it->second);
        index_.erase(it);
      }
      ++stats_.plan_invalidations;
      simmpi::trace_marker("engine:tuned stale");
    }
  }
}

template <typename T>
void PgemmEngine::multiply(const Request<T>& req) {
  std::lock_guard<simmpi::CoopMutex> lock(mu_);
  simmpi::RankCtxScope adopt(owner_ctx_);
  execute(lookup(key_of(req)), req);
}

template <typename T>
void PgemmEngine::submit(const std::vector<Request<T>>& batch) {
  std::lock_guard<simmpi::CoopMutex> lock(mu_);
  simmpi::RankCtxScope adopt(owner_ctx_);
  ++stats_.batches;
  // Group same-plan requests, preserving the order groups first appear in;
  // a group's requests then run back-to-back on one cached plan, so an
  // interleaved shape stream costs at most one miss per distinct shape
  // instead of thrashing the LRU.
  std::vector<std::pair<PlanKey, std::vector<const Request<T>*>>> groups;
  for (const Request<T>& r : batch) {
    const PlanKey key = key_of(r);
    auto git = std::find_if(groups.begin(), groups.end(),
                            [&](const auto& g) { return g.first == key; });
    if (git == groups.end()) {
      groups.emplace_back(key, std::vector<const Request<T>*>{});
      git = std::prev(groups.end());
    }
    git->second.push_back(&r);
  }
  for (const auto& [key, reqs] : groups)
    for (const Request<T>* r : reqs) execute(lookup(key), *r);
}

template void PgemmEngine::multiply<float>(const Request<float>&);
template void PgemmEngine::multiply<double>(const Request<double>&);
template void PgemmEngine::submit<float>(const std::vector<Request<float>>&);
template void PgemmEngine::submit<double>(
    const std::vector<Request<double>>&);

}  // namespace ca3dmm::engine
