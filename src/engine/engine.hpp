// Persistent PGEMM engine: executes a stream of multiply requests on one
// long-lived communicator, amortizing per-call setup the way a serving
// system must.
//
// One-shot ca3dmm_multiply rebuilds everything per call: the plan (grid
// solving), the split communicators (k-task / Cannon / replication /
// reduction groups — four collective splits that each charge latency to
// every rank), and all work buffers. Iterative workloads (density-matrix
// purification, CholeskyQR iteration — the paper's §V motivation) issue
// dozens of identically-shaped multiplications, so a PgemmEngine keeps:
//
//   * a plan cache   — LRU over (m, n, k, P, Ca3dmmOptions), with hit /
//                      miss / eviction counters. The element type is NOT
//                      part of the key: float and double requests of one
//                      shape share a plan (and its communicators).
//   * a comm cache   — each cached plan carries its PlanComms, split once
//                      on the miss and reused by every subsequent call, so
//                      repeated multiplies charge zero split latency.
//   * a buffer pool  — released TrackedBuffer allocations are parked on
//                      exact-size free lists and reused; pooled memory is
//                      tracked only while checked out, so per-rank peak
//                      memory keeps Table I semantics (see simmpi/pool.hpp).
//   * a batch API    — submit() takes a vector of requests, groups
//                      same-plan requests together, and executes them
//                      back-to-back (one plan lookup per run, no cache
//                      thrash when shapes interleave).
//
// Usage contract: every member of `world` constructs an engine and calls
// multiply()/submit()/plan_for() collectively in the same order with the
// same shapes and options (normal MPI discipline). The engine is a per-rank
// object; cache state evolves identically on all ranks because the request
// stream does. Results are bit-identical to the one-shot path.
//
// Concurrency: the engine is safe for concurrent callers on one rank. A
// mutex serializes multiply/submit/plan_for (collectives of one rank cannot
// interleave anyway — serialization is the only sound semantic, and it is
// what a serving layer's worker threads need), and the engine re-installs
// its owning rank's context + pool for the duration of each call, so helper
// threads without a rank context of their own can drive requests on the
// owning rank's behalf. Cross-rank collective matching remains the caller's
// contract: when racing callers can reorder requests, the interleaving must
// be order-insensitive (single-rank world, or identical requests).
//
// Failure semantics: a rank killed mid-batch triggers the cluster's
// cooperative abort, every peer unwinds, and Cluster::run raises one
// aggregated ca3dmm::Error. An engine whose execute() sees a ca3dmm::Error
// on its own rank invalidates the plan-cache entry in use (its split
// communicators may be poisoned by the failure), detaches the buffer pool
// via PoolScope unwinding (every TrackedBuffer returns its allocation on
// the exception path), and rethrows — leaving the engine safely reusable
// for the next submission. That reuse is exercised within a run for
// collectively raised validation errors; after a real rank loss the whole
// run is torn down and the shrink-and-replan layer (resilience/recovery.hpp)
// re-executes rank_main — with fresh engines — on the survivors. See
// docs/RESILIENCE.md.
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/ca3dmm.hpp"
#include "simmpi/cluster.hpp"
#include "simmpi/pool.hpp"
#include "tuner/db.hpp"

namespace ca3dmm::engine {

/// Tuning knobs of one engine instance. Must match on every rank.
struct EngineConfig {
  /// Plans (with their communicators) kept alive; least recently used
  /// entries are evicted beyond this.
  size_t plan_cache_capacity = 8;
  /// Cap on idle pooled buffer bytes per rank (see BufferPool).
  i64 pool_max_idle_bytes = 256ll << 20;
  /// Hard cap on the pool's total per-rank footprint (live + idle); 0 =
  /// unlimited. See BufferPool::set_footprint_budget — with a budget set,
  /// the pool's high-water mark provably stays under
  /// max(budget, peak live bytes), the serving layer's zero-OOM bound.
  i64 pool_footprint_budget_bytes = 0;
  /// Tuning database consulted on plan-cache miss (tuner/db.hpp); null =
  /// no tuning, the engine always plans with the request's own options.
  /// The engine never reads the DB on its execution path — it works from a
  /// per-engine snapshot taken at construction and refreshed by
  /// refresh_tuning() — so a background tuner may write concurrently.
  /// Caller keeps the DB alive for the engine's lifetime; every rank's
  /// engine must point at a DB with identical contents at construction
  /// (same file, no writer racing construction) or call refresh_tuning()
  /// before the first tunable request.
  tuner::TuningDb* tuning_db = nullptr;
  /// With a tuning_db: rank 0 enqueues every tunable plan-cache miss that
  /// found no fresh DB entry (request_tune) so a background Tuner::drain
  /// can tune it; the miss itself still runs on the heuristic.
  bool tune_on_miss = false;
  /// > 0 enables executed-drift feedback: after each multiply that ran a
  /// tuned config, rank 0's executed vtime is broadcast and compared
  /// against the entry's validated vtime; past this relative threshold the
  /// key is marked stale in the DB (and re-tune requested under
  /// tune_on_miss), the snapshot entry is disabled, and the cached plan
  /// dropped — the next request falls back to the heuristic. Costs one
  /// 8-byte broadcast per tuned multiply, so it is off (0) by default and
  /// must stay off where quoted vtimes are exactness-gated (the service
  /// layer). Executed time is a clock delta, so enable it only for
  /// back-to-back streams on native layouts; skewed entry clocks inflate
  /// the measurement.
  double tuned_stale_rtol = 0;
};

/// Monotonic per-engine counters. Cache counters evolve identically on
/// every rank (the request stream is collective); splits_saved and the pool
/// snapshot are this rank's own view (idle ranks skip the per-plan group
/// splits, so they save fewer).
struct EngineStats {
  i64 requests = 0;         ///< multiplies executed
  i64 batches = 0;          ///< submit() calls
  i64 plan_hits = 0;        ///< requests served by a cached plan
  i64 plan_misses = 0;      ///< requests that built a plan + comms
  i64 plan_evictions = 0;   ///< cache entries dropped (LRU)
  /// Cache entries dropped because a multiply using them raised an error
  /// (failed ranks may leave a cached communicator half-rendezvoused, so
  /// the whole entry is poisoned; the next submission re-plans and
  /// re-splits). Evolves identically on every surviving rank.
  i64 plan_invalidations = 0;
  /// Communicator splits avoided versus the one-shot path (each cache hit
  /// skips the active/cannon/replication/reduction splits of its plan).
  i64 splits_saved = 0;
  /// Plan-cache misses whose plan was built from a tuning-DB entry instead
  /// of the request's own options. Evolves identically on every rank.
  i64 tuned_plans = 0;
  simmpi::PoolStats pool;   ///< buffer-pool snapshot (filled by stats())

  double plan_hit_rate() const {
    const i64 total = plan_hits + plan_misses;
    return total == 0 ? 0.0 : static_cast<double>(plan_hits) / total;
  }
};

/// One multiplication request: C = op(A) x op(B), same argument contract as
/// ca3dmm_multiply (layouts span the engine's communicator; local pointers
/// may be null only when the layout assigns this rank zero elements).
template <typename T>
struct Request {
  i64 m = 0, n = 0, k = 0;
  bool trans_a = false, trans_b = false;
  const BlockLayout* a_layout = nullptr;
  const T* a = nullptr;
  const BlockLayout* b_layout = nullptr;
  const T* b = nullptr;
  const BlockLayout* c_layout = nullptr;
  T* c = nullptr;
  Ca3dmmOptions opt{};
};

class PgemmEngine {
 public:
  /// Binds the engine to `world` (the handle is dup()ed — cheap and local).
  /// Collective only in the sense that every rank must construct one.
  explicit PgemmEngine(simmpi::Comm& world, EngineConfig cfg = {});

  PgemmEngine(const PgemmEngine&) = delete;
  PgemmEngine& operator=(const PgemmEngine&) = delete;

  /// Executes one request through the caches. Collective over world.
  template <typename T>
  void multiply(const Request<T>& req);

  /// Executes a batch: requests are grouped by plan key (first-appearance
  /// order preserved) and each group runs back-to-back on one cached plan.
  /// Requests in a batch must be independent — the engine may reorder them
  /// across groups, so no request's input may alias another's output.
  /// Collective over world; every rank passes the same batch shape-wise.
  template <typename T>
  void submit(const std::vector<Request<T>>& batch);

  /// Plans (or returns the cached plan) for a shape without executing —
  /// pre-warming the caches. Collective over world on a cache miss (the
  /// communicators are split here). The reference stays valid until the
  /// entry is evicted.
  const Ca3dmmPlan& plan_for(i64 m, i64 n, i64 k,
                             const Ca3dmmOptions& opt = {});

  /// True when the shape's plan (and split communicators) are already
  /// cached, i.e. the next request of this shape takes the warm path.
  /// Purely local — never plans, never communicates — so a serving layer
  /// may consult it for pricing without collective discipline.
  bool is_cached(i64 m, i64 n, i64 k, const Ca3dmmOptions& opt = {}) const;

  /// Frees idle pooled buffers (largest first) until at most
  /// `target_idle_bytes` remain parked; returns the bytes freed. Purely
  /// local and safe mid-stream — the memory-pressure hook for a serving
  /// layer (see BufferPool::trim).
  i64 trim_pool(i64 target_idle_bytes);

  /// Counters, with a current buffer-pool snapshot merged in.
  EngineStats stats() const;

  size_t cached_plans() const;

  /// Drops every cached plan (with its communicators) and all idle pooled
  /// buffers. Purely local: no communication, no virtual-time charge.
  void clear();

  /// Re-snapshots the tuning DB. Collective over world: rank 0 serializes
  /// the DB (under its lock) and broadcasts the bytes, so every rank's
  /// snapshot is identical by construction even with a tuner writing
  /// concurrently — per-rank direct reads could observe different states
  /// and diverge the collective plan build. Charges the broadcast's
  /// virtual time; call it at stream boundaries, not inside priced
  /// regions. Returns the keys whose entries changed (added, updated,
  /// marked stale, or removed) — the service invalidates its CostOracle
  /// quotes for exactly those. No-op without a tuning_db.
  std::vector<tuner::TuningKey> refresh_tuning();

  /// The tuned config the engine would apply to a plan-cache miss of this
  /// request, from the current snapshot: set iff the request is tunable
  /// (no force_grid, no coll, not SUMMA) and a fresh (non-stale) entry
  /// covers its key. Purely local — safe for pricing, like is_cached().
  std::optional<tuner::TunedConfig> tuned_for(
      i64 m, i64 n, i64 k, const Ca3dmmOptions& opt = {}) const;

 private:
  struct PlanKey {
    i64 m = 0, n = 0, k = 0;
    int nranks = 0;
    Ca3dmmOptions opt{};
    friend bool operator==(const PlanKey&, const PlanKey&) = default;
  };
  struct PlanKeyHash {
    size_t operator()(const PlanKey& key) const;
  };
  struct Entry {
    PlanKey key;
    Ca3dmmPlan plan;
    PlanComms comms;
    i64 splits_per_call = 0;  ///< one-shot splits this rank avoids per hit
    bool tuned = false;       ///< plan built from a tuning-DB entry
    tuner::TuningKey tkey{};  ///< the entry's key (valid when tuned)
    double tuned_validated_s = 0;  ///< drift-feedback reference vtime
  };

  /// Returns the cache entry for the key, building plan + comms on a miss
  /// (collective!) and updating LRU order and counters.
  Entry& lookup(const PlanKey& key);

  template <typename T>
  void execute(Entry& entry, const Request<T>& req);

  template <typename T>
  PlanKey key_of(const Request<T>& req) const;

  /// Fresh snapshot entry covering a tunable request, else null. mu_ held.
  const tuner::TuningEntry* tuned_entry_locked(i64 m, i64 n, i64 k,
                                               const Ca3dmmOptions& opt) const;

  simmpi::Comm world_;
  EngineConfig cfg_;
  /// Rank context of the thread that constructed the engine. Each public
  /// call re-installs it (RankCtxScope) so helper threads adopt the owning
  /// rank's clock/stats/tracking for the call's duration.
  simmpi::RankCtx* owner_ctx_;
  /// Serializes all public entry points. The LRU list, index, pool, and
  /// stats — and the underlying per-rank communicator — are single-caller
  /// structures; one caller at a time is the only sound semantic. A
  /// CoopMutex (not std::mutex) because under the fiber backend the owning
  /// rank may migrate between worker threads while holding it, and a
  /// blocked contender must park its fiber instead of wedging its worker.
  mutable simmpi::CoopMutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash> index_;
  simmpi::BufferPool pool_;
  EngineStats stats_;
  /// Per-engine snapshot of the tuning DB (see EngineConfig::tuning_db).
  std::map<tuner::TuningKey, tuner::TuningEntry> tuned_view_;
};

}  // namespace ca3dmm::engine
