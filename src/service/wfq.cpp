#include "service/wfq.hpp"

#include "common/error.hpp"

namespace ca3dmm::service {

void WfqScheduler::add_tenant(int tenant, double weight, int priority_class) {
  CA_REQUIRE(weight > 0, "WFQ tenant %d needs weight > 0, got %g", tenant,
             weight);
  CA_REQUIRE(!tenants_.count(tenant), "WFQ tenant %d registered twice",
             tenant);
  Tenant t;
  t.weight = weight;
  t.priority_class = priority_class;
  tenants_[tenant] = t;
}

void WfqScheduler::enqueue(int tenant, i64 id, double cost, double now_s) {
  auto it = tenants_.find(tenant);
  CA_REQUIRE(it != tenants_.end(), "WFQ enqueue for unknown tenant %d",
             tenant);
  CA_REQUIRE(cost >= 0, "WFQ cost must be >= 0, got %g", cost);
  Tenant& t = it->second;
  Item item;
  item.id = id;
  item.cost = cost;
  item.start_tag = std::max(vtime_, t.last_finish);
  item.finish_tag = item.start_tag + cost / t.weight;
  item.enqueued_s = now_s;
  t.last_finish = item.finish_tag;
  t.q.push_back(item);
  ++queued_;
}

std::optional<WfqScheduler::Pick> WfqScheduler::pick(double now_s) {
  const Tenant* best_t = nullptr;
  int best_tenant = 0;
  int best_class = 0;
  for (const auto& [tid, t] : tenants_) {
    if (t.q.empty()) continue;
    const Item& head = t.q.front();
    int cls = t.priority_class;
    if (starvation_bound_s_ > 0 &&
        now_s - head.enqueued_s > starvation_bound_s_)
      cls = 0;  // aged past the bound: competes with the top class
    // Lexicographic (class, finish tag, tenant id): deterministic on every
    // rank regardless of map sizes or float ties.
    if (!best_t || cls < best_class ||
        (cls == best_class &&
         (head.finish_tag < best_t->q.front().finish_tag ||
          (head.finish_tag == best_t->q.front().finish_tag &&
           tid < best_tenant)))) {
      best_t = &t;
      best_tenant = tid;
      best_class = cls;
    }
  }
  if (!best_t) return std::nullopt;
  Tenant& t = tenants_[best_tenant];
  const Item item = t.q.front();
  t.q.pop_front();
  --queued_;
  vtime_ = std::max(vtime_, item.start_tag);
  Pick p;
  p.tenant = best_tenant;
  p.id = item.id;
  p.cost = item.cost;
  p.enqueued_s = item.enqueued_s;
  return p;
}

void WfqScheduler::on_served(int tenant, double executed_s) {
  auto it = tenants_.find(tenant);
  CA_REQUIRE(it != tenants_.end(), "WFQ on_served for unknown tenant %d",
             tenant);
  it->second.served_s += executed_s;
}

i64 WfqScheduler::queue_depth(int tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : static_cast<i64>(it->second.q.size());
}

double WfqScheduler::queued_cost(int tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  double s = 0;
  for (const Item& i : it->second.q) s += i.cost;
  return s;
}

double WfqScheduler::served(int tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.served_s;
}

double WfqScheduler::weight(int tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.weight;
}

double WfqScheduler::total_weight() const {
  double s = 0;
  for (const auto& [tid, t] : tenants_) s += t.weight;
  return s;
}

bool WfqScheduler::all_backlogged() const {
  for (const auto& [tid, t] : tenants_)
    if (t.q.empty()) return false;
  return !tenants_.empty();
}

}  // namespace ca3dmm::service
