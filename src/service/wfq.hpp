// Weighted fair queueing over predicted virtual time.
//
// Start-time fair queueing (SFQ): each tenant carries a chain of virtual
// tags. An item enqueued for tenant t gets start tag S = max(V, F_prev(t))
// and finish tag F = S + cost / weight(t), where V is the scheduler's
// virtual time (the start tag of the item most recently picked) and
// F_prev(t) chains within the tenant. pick() serves the eligible item with
// the smallest finish tag, which over any interval where tenants stay
// backlogged serves them virtual time proportional to their weights — the
// property tests/test_service.cpp gates at ±5%.
//
// Priority classes sit on top: a lower class number is served strictly
// first, EXCEPT that an item that has waited longer than the starvation
// bound (in service virtual time, supplied by the caller at pick()) is
// promoted to class 0 for selection — so a flood of high-priority work can
// delay batch tenants by at most the bound, never forever.
//
// Costs are *predicted* seconds (costmodel admission quotes). The caller
// feeds *executed* seconds back through on_served(), which is what the
// fairness metrics and the served() accounting report. Everything here is
// plain deterministic data structure — no clocks, no randomness — so every
// rank of a deterministic service loop makes identical scheduling
// decisions.
#pragma once

#include <deque>
#include <map>
#include <optional>

#include "common/partition.hpp"

namespace ca3dmm::service {

class WfqScheduler {
 public:
  /// `starvation_bound_s` <= 0 disables aging (strict priority classes).
  explicit WfqScheduler(double starvation_bound_s = 0)
      : starvation_bound_s_(starvation_bound_s) {}

  /// Registers a tenant. Must be called before enqueueing for it. Lower
  /// `priority_class` is served first (subject to the starvation bound).
  void add_tenant(int tenant, double weight, int priority_class = 0);

  /// Appends an item (FIFO within the tenant). `cost` is the predicted
  /// service time in seconds; `now_s` is the service's current virtual time
  /// (used only for starvation aging). Items are identified by caller ids.
  void enqueue(int tenant, i64 id, double cost, double now_s);

  struct Pick {
    int tenant = 0;
    i64 id = 0;
    double cost = 0;       ///< predicted cost the item was enqueued with
    double enqueued_s = 0; ///< service vtime at enqueue (queueing delay)
  };

  /// Dequeues the next item by (effective class, finish tag, tenant).
  /// `now_s` is the service's current virtual time. Empty when no items.
  std::optional<Pick> pick(double now_s);

  /// Feeds executed virtual time of a completed item back into the
  /// tenant's served accounting.
  void on_served(int tenant, double executed_s);

  bool empty() const { return queued_ == 0; }
  i64 queued() const { return queued_; }
  i64 queue_depth(int tenant) const;
  /// Sum of predicted costs currently queued for the tenant.
  double queued_cost(int tenant) const;
  /// Cumulative executed virtual time served to the tenant.
  double served(int tenant) const;
  double weight(int tenant) const;
  double total_weight() const;
  /// True when every registered tenant has at least one queued item — the
  /// condition under which the weighted-fairness guarantee applies.
  bool all_backlogged() const;

 private:
  struct Item {
    i64 id = 0;
    double cost = 0;
    double start_tag = 0;
    double finish_tag = 0;
    double enqueued_s = 0;
  };
  struct Tenant {
    double weight = 1.0;
    int priority_class = 0;
    double last_finish = 0;  ///< finish tag chain within the tenant
    double served_s = 0;     ///< cumulative executed vtime
    std::deque<Item> q;
  };

  double starvation_bound_s_;
  double vtime_ = 0;  ///< start tag of the most recently picked item
  i64 queued_ = 0;
  std::map<int, Tenant> tenants_;  ///< ordered: deterministic iteration
};

}  // namespace ca3dmm::service
