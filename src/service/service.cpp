#include "service/service.hpp"

#include <algorithm>
#include <map>

#include "common/rng.hpp"

namespace ca3dmm::service {

using costmodel::Algo;
using costmodel::Quote;
using costmodel::Workload;
using engine::Request;
using simmpi::Comm;

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kCompleted: return "completed";
    case Verdict::kRejectedQueueFull: return "rejected_queue_full";
    case Verdict::kRejectedMemQuota: return "rejected_mem_quota";
    case Verdict::kRejectedVtimeQuota: return "rejected_vtime_quota";
    case Verdict::kRejectedTooLarge: return "rejected_too_large";
    case Verdict::kFailed: return "failed";
  }
  return "?";
}

namespace {

/// Fills this rank's local buffer under `layout` from the virtual global
/// random matrix `seed` (same generator the tests validate against). Host
/// work only — charges no virtual time.
void fill_local(const BlockLayout& layout, int rank, std::uint64_t seed,
                std::vector<double>& buf) {
  buf.assign(static_cast<size_t>(layout.local_size(rank)), 0.0);
  i64 pos = 0;
  for (const Rect& r : layout.rects_of(rank))
    for (i64 i = r.r.lo; i < r.r.hi; ++i)
      for (i64 j = r.c.lo; j < r.c.hi; ++j)
        buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Same relative-drift definition as the CI drift gate (drift.hpp).
double rel_drift(double predicted, double executed) {
  const double den = std::max(std::abs(predicted), std::abs(executed));
  return den == 0 ? 0 : std::abs(executed - predicted) / den;
}

}  // namespace

namespace {

/// The service's memory budget doubles as the pool's hard footprint cap,
/// which is what makes the zero-OOM gate a guarantee rather than a hope:
/// the pool evicts idle buffers before any allocation that would bust it.
engine::EngineConfig engine_config_of(const ServiceConfig& cfg) {
  engine::EngineConfig ec = cfg.engine;
  if (cfg.memory_budget_bytes > 0 && ec.pool_footprint_budget_bytes == 0)
    ec.pool_footprint_budget_bytes = cfg.memory_budget_bytes;
  return ec;
}

}  // namespace

PgemmService::PgemmService(Comm& world, const ServiceConfig& cfg)
    : world_(world.dup()),
      cfg_(cfg),
      engine_(world, engine_config_of(cfg)),
      oracle_(world.size(), world.machine()) {
  CA_REQUIRE(!cfg_.tenants.empty(), "PgemmService needs at least one tenant");
  for (const TenantConfig& t : cfg_.tenants) {
    CA_REQUIRE(t.weight > 0, "tenant '%s' needs weight > 0", t.name.c_str());
    CA_REQUIRE(t.max_queue >= 1, "tenant '%s' needs max_queue >= 1",
               t.name.c_str());
  }
  if (cfg_.engine.tuning_db)
    tuning_listener_ = cfg_.engine.tuning_db->add_listener(
        [this](const tuner::TuningEntry& e) {
          std::lock_guard<std::mutex> lock(tuning_mu_);
          tuning_changed_.push_back(e.key);
        });
}

PgemmService::~PgemmService() {
  if (tuning_listener_ >= 0)
    cfg_.engine.tuning_db->remove_listener(tuning_listener_);
}

std::vector<tuner::TuningKey> PgemmService::refresh_tuning() {
  std::vector<tuner::TuningKey> changed = engine_.refresh_tuning();
  {
    std::lock_guard<std::mutex> lock(tuning_mu_);
    changed.insert(changed.end(), tuning_changed_.begin(),
                   tuning_changed_.end());
    tuning_changed_.clear();
  }
  // A tuning key covers a bucket of shapes; drop every memoized quote whose
  // shape the changed key covers (duplicates are idempotent).
  for (const tuner::TuningKey& key : changed)
    oracle_.invalidate_if([&](i64 m, i64 n, i64 k) {
      return tuner::make_key(m, n, k, oracle_.P(), oracle_.machine()) == key;
    });
  return changed;
}

Workload PgemmService::workload_of(const ServiceRequest& r) const {
  Workload w{r.m, r.n, r.k};
  w.force_grid = r.opt.force_grid;
  w.min_kblk = r.opt.min_kblk;
  w.abft = r.opt.abft;
  w.overlap = r.opt.overlap;
  if (r.opt.coll) w.coll = *r.opt.coll;
  // Mirror the engine's tuning snapshot: a tunable request plans under the
  // tuned config on its cache miss, so it must be priced under it too —
  // the quote/execution exactness gate depends on the two never diverging.
  if (const auto tuned = engine_.tuned_for(r.m, r.n, r.k, r.opt)) {
    w.force_grid = tuned->grid;
    w.coll = tuned->coll;
    w.overlap = tuned->overlap;
  }
  return w;
}

double PgemmService::dispatch(const ServiceRequest& r, double* predicted_out) {
  const Algo algo = r.opt.use_summa ? Algo::kCa3dmmSumma : Algo::kCa3dmm;
  const Quote& q = oracle_.quote(algo, workload_of(r));
  // Price against the engine's *current* cache state: the first request of
  // a shape pays the plan + communicator splits, everyone after rides the
  // cached plan. is_cached evolves identically on every rank.
  const bool cached = engine_.is_cached(r.m, r.n, r.k, r.opt);
  *predicted_out = q.batch_s(r.batch, cached);

  const double t0 = world_.now();
  const Ca3dmmPlan& plan = engine_.plan_for(r.m, r.n, r.k, r.opt);
  const BlockLayout a_nat = plan.a_native();
  const BlockLayout b_nat = plan.b_native();
  const BlockLayout c_nat = plan.c_native();
  const int me = world_.rank();
  std::vector<double> a, b;
  fill_local(a_nat, me, r.seed_a, a);
  fill_local(b_nat, me, r.seed_b, b);
  std::vector<std::vector<double>> cs(
      static_cast<size_t>(r.batch),
      std::vector<double>(static_cast<size_t>(c_nat.local_size(me))));
  std::vector<Request<double>> reqs;
  for (int i = 0; i < r.batch; ++i) {
    Request<double> req;
    req.m = r.m;
    req.n = r.n;
    req.k = r.k;
    req.a_layout = &a_nat;
    req.a = a.data();
    req.b_layout = &b_nat;
    req.b = b.data();
    req.c_layout = &c_nat;
    req.c = cs[static_cast<size_t>(i)].data();
    req.opt = r.opt;
    reqs.push_back(req);
  }
  engine_.submit(reqs);
  const double dt = world_.now() - t0;

  // Executed vtime = max over ranks of the clock delta. The final
  // redistribution is a world collective, so exits are equalized and every
  // rank computes the same value; the allgather below is service overhead,
  // charged after the measurement window.
  std::vector<double> deltas(static_cast<size_t>(world_.size()));
  world_.allgather(&dt, 1, deltas.data());
  return *std::max_element(deltas.begin(), deltas.end());
}

ServiceReport PgemmService::serve(const std::vector<ServiceRequest>& load,
                                  const std::vector<RequestRecord>& journal,
                                  std::vector<RequestRecord>* journal_out) {
  if (cfg_.engine.tuning_db) refresh_tuning();
  const int nt = static_cast<int>(cfg_.tenants.size());

  // --- per-tenant runtime state ---
  struct TState {
    double tokens = 0;
    double last_refill = 0;
    i64 outstanding_bytes = 0;
    std::vector<double> latencies;  // finish - arrival, completed requests
    std::vector<double> drifts;     // |pred - exec| / max
  };
  std::vector<TState> ts(static_cast<size_t>(nt));
  WfqScheduler wfq(cfg_.starvation_bound_s);
  for (int t = 0; t < nt; ++t) {
    wfq.add_tenant(t, cfg_.tenants[static_cast<size_t>(t)].weight,
                   cfg_.tenants[static_cast<size_t>(t)].priority_class);
    ts[static_cast<size_t>(t)].tokens =
        cfg_.tenants[static_cast<size_t>(t)].vtime_burst;
  }

  ServiceReport rep;
  rep.tenants.resize(static_cast<size_t>(nt));
  rep.fair_window_served.assign(static_cast<size_t>(nt), 0.0);
  for (int t = 0; t < nt; ++t) {
    rep.tenants[static_cast<size_t>(t)].name =
        cfg_.tenants[static_cast<size_t>(t)].name;
    rep.tenants[static_cast<size_t>(t)].weight =
        cfg_.tenants[static_cast<size_t>(t)].weight;
  }

  // --- load validation + lookup tables ---
  std::map<i64, const ServiceRequest*> by_id;
  for (size_t i = 0; i < load.size(); ++i) {
    const ServiceRequest& r = load[i];
    CA_REQUIRE(r.tenant >= 0 && r.tenant < nt,
               "request %lld names unknown tenant %d",
               static_cast<long long>(r.id), r.tenant);
    CA_REQUIRE(r.batch >= 1, "request %lld has batch < 1",
               static_cast<long long>(r.id));
    CA_REQUIRE(by_id.emplace(r.id, &r).second, "duplicate request id %lld",
               static_cast<long long>(r.id));
    CA_REQUIRE(i == 0 || load[i - 1].arrival_s <= r.arrival_s,
               "load must be sorted by arrival time");
  }
  std::map<i64, RequestRecord> replay;  // journaled outcomes from attempts
  for (const RequestRecord& rec : journal) replay[rec.id] = rec;

  // Admission-time debits, reconciled at completion.
  struct AdmitInfo {
    double debit = 0;
    i64 peak = 0;
  };
  std::map<i64, AdmitInfo> admitted;

  double vnow = 0;
  size_t next = 0;
  bool window_started = false, window_open = true;

  const double total_weight = wfq.total_weight();

  auto refill = [&](int t) {
    TState& s = ts[static_cast<size_t>(t)];
    const TenantConfig& c = cfg_.tenants[static_cast<size_t>(t)];
    s.tokens = std::min(c.vtime_burst,
                        s.tokens + (vnow - s.last_refill) * c.vtime_rate);
    s.last_refill = vnow;
  };

  auto account_completed = [&](const RequestRecord& rec) {
    TenantMetrics& m = rep.tenants[static_cast<size_t>(rec.tenant)];
    TState& s = ts[static_cast<size_t>(rec.tenant)];
    ++m.admitted;
    ++m.completed;
    m.served_predicted_s += rec.predicted_s;
    m.served_executed_s += rec.executed_s;
    s.latencies.push_back(rec.finish_s - rec.arrival_s);
    s.drifts.push_back(rel_drift(rec.predicted_s, rec.executed_s));
    wfq.on_served(rec.tenant, rec.executed_s);
  };

  auto account_rejected = [&](const RequestRecord& rec) {
    TenantMetrics& m = rep.tenants[static_cast<size_t>(rec.tenant)];
    switch (static_cast<Verdict>(rec.verdict)) {
      case Verdict::kRejectedQueueFull: ++m.rejected_queue; break;
      case Verdict::kRejectedMemQuota: ++m.rejected_mem; break;
      case Verdict::kRejectedVtimeQuota: ++m.rejected_vtime; break;
      case Verdict::kRejectedTooLarge: ++m.rejected_too_large; break;
      default: break;
    }
  };

  // --- the deterministic serving loop (identical on every rank) ---
  while (next < load.size() || !wfq.empty()) {
    // Admit every arrival that is due.
    while (next < load.size() &&
           load[next].arrival_s <= vnow + 1e-15) {
      const ServiceRequest& r = load[next];
      ++next;
      const auto rp = replay.find(r.id);
      if (rp != replay.end()) {
        // Journaled outcome from a prior attempt: replay into accounting
        // without re-executing (completed work keeps its recorded latency)
        // and without re-deciding (quotes may differ at the survivor
        // count; the original decision stands).
        const RequestRecord& rec = rp->second;
        rep.records.push_back(rec);
        const Verdict v = static_cast<Verdict>(rec.verdict);
        if (v == Verdict::kCompleted) {
          account_completed(rec);
          vnow = std::max(vnow, rec.finish_s);
        } else if (v == Verdict::kFailed) {
          TenantMetrics& m = rep.tenants[static_cast<size_t>(rec.tenant)];
          ++m.admitted;
          ++m.failed;
          vnow = std::max(vnow, rec.start_s);
        } else {
          account_rejected(rec);
        }
        continue;
      }

      const TenantConfig& tc = cfg_.tenants[static_cast<size_t>(r.tenant)];
      TState& s = ts[static_cast<size_t>(r.tenant)];
      TenantMetrics& m = rep.tenants[static_cast<size_t>(r.tenant)];
      const Algo algo =
          r.opt.use_summa ? Algo::kCa3dmmSumma : Algo::kCa3dmm;
      const Quote& q = oracle_.quote(algo, workload_of(r));
      // Steady-state (warm) price: quota accounting should not depend on
      // transient cache state; the cold/warm split is re-priced at
      // dispatch for the SLA record.
      const double price = q.batch_s(r.batch, /*cached=*/true);

      RequestRecord rec;
      rec.id = r.id;
      rec.tenant = r.tenant;
      rec.done = true;
      rec.arrival_s = r.arrival_s;
      rec.admit_s = vnow;
      rec.peak_bytes = q.peak_bytes;

      refill(r.tenant);
      // Deterministic fair-share ETA used in retry-after estimates: the
      // tenant's queued work divided by its weight share of the service.
      const double eta =
          wfq.queued_cost(r.tenant) * total_weight / tc.weight;
      if (q.peak_bytes > tc.mem_quota_bytes) {
        rec.verdict = static_cast<int>(Verdict::kRejectedTooLarge);
      } else if (wfq.queue_depth(r.tenant) >= tc.max_queue) {
        rec.verdict = static_cast<int>(Verdict::kRejectedQueueFull);
        rec.retry_after_s = std::max(price, eta / 2);
      } else if (s.outstanding_bytes + q.peak_bytes > tc.mem_quota_bytes) {
        rec.verdict = static_cast<int>(Verdict::kRejectedMemQuota);
        rec.retry_after_s = std::max(price, eta / 2);
      } else if (s.tokens < price) {
        rec.verdict = static_cast<int>(Verdict::kRejectedVtimeQuota);
        rec.retry_after_s = (price - s.tokens) / tc.vtime_rate;
      } else {
        // Admitted: debit the bucket, reserve the memory, queue under WFQ.
        s.tokens -= price;
        s.outstanding_bytes += q.peak_bytes;
        m.peak_outstanding_bytes =
            std::max(m.peak_outstanding_bytes, s.outstanding_bytes);
        admitted[r.id] = AdmitInfo{price, q.peak_bytes};
        wfq.enqueue(r.tenant, r.id, price, vnow);
        continue;  // outcome recorded at dispatch
      }
      rep.records.push_back(rec);
      account_rejected(rec);
      if (journal_out) journal_out->push_back(rec);
    }

    if (wfq.empty()) {
      if (next >= load.size()) break;
      vnow = std::max(vnow, load[next].arrival_s);
      continue;
    }

    // Fair-window tracking: the snapshot accumulates from the first pick
    // where every tenant is backlogged until any tenant's queue runs dry —
    // the interval over which WFQ's proportional-share guarantee holds.
    if (!window_started && wfq.all_backlogged()) window_started = true;
    else if (window_started && window_open && !wfq.all_backlogged())
      window_open = false;

    const WfqScheduler::Pick pick = *wfq.pick(vnow);
    const ServiceRequest& r = *by_id.at(pick.id);
    const AdmitInfo admit = admitted.at(pick.id);
    admitted.erase(pick.id);

    // Pool pressure: trim idle pooled bytes so footprint (live + idle)
    // stays under budget even at this request's predicted peak.
    if (cfg_.memory_budget_bytes > 0) {
      const i64 target =
          std::max<i64>(0, cfg_.memory_budget_bytes - admit.peak);
      if (engine_.trim_pool(target) > 0) ++rep.pool_trims;
    }

    // In-flight journal mark: if the run aborts inside dispatch, the
    // driver knows exactly which request was lost.
    RequestRecord rec;
    rec.id = r.id;
    rec.tenant = r.tenant;
    rec.done = false;
    rec.verdict = static_cast<int>(Verdict::kFailed);
    rec.arrival_s = r.arrival_s;
    rec.admit_s = pick.enqueued_s;
    rec.start_s = vnow;
    rec.peak_bytes = admit.peak;
    size_t journal_slot = 0;
    if (journal_out) {
      journal_out->push_back(rec);
      journal_slot = journal_out->size() - 1;
    }

    double predicted = 0;
    const double executed = dispatch(r, &predicted);
    const double t_start = vnow;
    vnow += executed;

    rec.done = true;
    rec.verdict = static_cast<int>(Verdict::kCompleted);
    rec.start_s = t_start;
    rec.finish_s = vnow;
    rec.predicted_s = predicted;
    rec.executed_s = executed;
    rep.records.push_back(rec);
    if (journal_out) (*journal_out)[journal_slot] = rec;

    TState& s = ts[static_cast<size_t>(r.tenant)];
    s.outstanding_bytes -= admit.peak;
    // Token reconciliation: the bucket was debited the steady-state price
    // at admission; settle to the executed cost.
    refill(r.tenant);
    s.tokens = std::min(
        cfg_.tenants[static_cast<size_t>(r.tenant)].vtime_burst,
        s.tokens + (admit.debit - executed));
    account_completed(rec);

    if (window_started && window_open) {
      for (int t = 0; t < nt; ++t)
        rep.fair_window_served[static_cast<size_t>(t)] = wfq.served(t);
      rep.fair_window_end_s = vnow;
    }
  }

  // --- finalize ---
  rep.vtime_end = vnow;
  for (int t = 0; t < nt; ++t) {
    TenantMetrics& m = rep.tenants[static_cast<size_t>(t)];
    TState& s = ts[static_cast<size_t>(t)];
    m.p50_latency_s = percentile(s.latencies, 0.50);
    m.p99_latency_s = percentile(s.latencies, 0.99);
    m.p50_drift = percentile(s.drifts, 0.50);
    m.p99_drift = percentile(s.drifts, 0.99);
    for (double d : s.drifts) m.max_drift = std::max(m.max_drift, d);
  }
  rep.engine = engine_.stats();
  // Zero-OOM evidence: max over ranks of the pool's high-water footprint.
  const i64 my_hw = rep.engine.pool.high_water_bytes;
  std::vector<i64> hw(static_cast<size_t>(world_.size()));
  world_.allgather(&my_hw, 1, hw.data());
  rep.pool_high_water_bytes = *std::max_element(hw.begin(), hw.end());
  return rep;
}

}  // namespace ca3dmm::service
