// Multi-tenant PGEMM service: cost-priced admission, weighted fair
// scheduling, quotas, and backpressure on top of the persistent engine.
//
// The north-star is serving heavy PGEMM traffic from many tenants on one
// set of ranks. Everything below this layer is deterministic and priced:
// the engine executes in deterministic virtual time, and costmodel::predict
// quotes any request's latency and peak memory *before* it runs (held to
// the executed engine within 1e-6 relative by the drift gate). PgemmService
// exploits that to make every serving decision exact rather than heuristic:
//
//   admission    — each request is priced by a memoizing CostOracle
//                  (admission.hpp). Requests whose peak memory can never
//                  fit the tenant's quota are rejected permanently; ones
//                  that merely exceed the quota *now* are shed with a
//                  deterministic retry-after estimate (backpressure, never
//                  OOM).
//   quotas       — per-tenant outstanding-predicted-peak memory cap, plus a
//                  token-bucket virtual-time budget (rate + burst, in
//                  seconds of service vtime). Token debits use the
//                  predicted cost at admission and are reconciled to the
//                  executed cost at completion.
//   scheduling   — start-time weighted fair queueing over predicted vtime
//                  (wfq.hpp) with priority classes and a starvation bound.
//   backpressure — bounded per-tenant queues; a full queue rejects with
//                  retry-after instead of growing without bound.
//   pool budget  — before each dispatch the engine's idle pooled bytes are
//                  trimmed to (budget - predicted peak), so the pool's
//                  high-water mark provably stays under the configured
//                  per-rank budget: zero OOM by construction.
//
// Execution model: serve() runs *inside* a Cluster rank body — every rank
// runs the identical deterministic loop, so no control messages are needed.
// All decisions derive from predicted costs and shared deterministic state
// only (never rank-local pool or clock state). A request's executed virtual
// time is measured as the max over ranks of each rank's clock delta
// (allgathered — the clocks themselves need not be equal, the delta max is
// the collective's completion semantics), so every rank accounts the same
// executed latency and the per-tenant p50/p99 predicted-vs-executed SLA
// metrics are exactly reproducible.
//
// Failure isolation: a tenant's injected fault aborts the cluster run (the
// engine/cluster failure semantics); the ServiceDriver (driver.hpp) then
// shrinks, marks exactly the in-flight request failed in its journal, and
// replays. Completed requests re-enter accounting with their journaled
// metrics and are not re-executed, so one tenant's faults cost other
// tenants nothing but the recovery latency. See docs/SERVICE.md.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "costmodel/admission.hpp"
#include "engine/engine.hpp"
#include "service/wfq.hpp"
#include "simmpi/comm.hpp"

namespace ca3dmm::service {

/// Per-tenant serving contract. Defaults are effectively "unlimited".
struct TenantConfig {
  std::string name;
  double weight = 1.0;      ///< WFQ weight (share of service vtime)
  int priority_class = 0;   ///< lower = served first (see wfq.hpp)
  /// Cap on the sum of *outstanding* predicted peak bytes (queued +
  /// running). A single request predicted above this can never be admitted.
  i64 mem_quota_bytes = i64{1} << 60;
  double vtime_rate = 1e18;   ///< token-bucket refill, vtime-seconds/second
  double vtime_burst = 1e18;  ///< token-bucket capacity, seconds
  i64 max_queue = 64;         ///< bounded queue depth (backpressure)
};

struct ServiceConfig {
  std::vector<TenantConfig> tenants;
  /// Per-rank cap on the engine pool footprint (live + idle bytes); 0 =
  /// unlimited. Enforced by trimming idle pooled memory before dispatch.
  i64 memory_budget_bytes = 0;
  /// WFQ starvation bound in service vtime seconds (<= 0 disables aging).
  double starvation_bound_s = 0;
  engine::EngineConfig engine{};
};

/// One tenant request: a CA3DMM multiply (or a batch of `batch` identical
/// small multiplies submitted together). Operands are virtual deterministic
/// matrices (matrix_entry seeds) in the plan's native layouts; ids must be
/// unique across the whole load.
struct ServiceRequest {
  int tenant = 0;
  i64 id = 0;
  double arrival_s = 0;  ///< service virtual arrival time
  i64 m = 0, n = 0, k = 0;
  int batch = 1;
  std::uint64_t seed_a = 31, seed_b = 32;
  Ca3dmmOptions opt{};
};

enum class Verdict : int {
  kCompleted = 0,
  kRejectedQueueFull,   ///< backpressure: tenant queue at max_queue
  kRejectedMemQuota,    ///< backpressure: outstanding peak over quota
  kRejectedVtimeQuota,  ///< backpressure: token bucket empty
  kRejectedTooLarge,    ///< permanent: single request exceeds mem quota
  kFailed,              ///< aborted by a fault; journaled by the driver
};

const char* verdict_name(Verdict v);

/// Outcome of one request. Plain POD so the driver's journal can replay it
/// across shrink-and-replan attempts.
struct RequestRecord {
  i64 id = 0;
  int tenant = 0;
  int verdict = 0;          ///< Verdict
  bool done = false;        ///< false = was in flight when the run aborted
  double arrival_s = 0;
  double admit_s = 0;       ///< vtime of the admission decision
  double start_s = 0;       ///< dispatch vtime (kCompleted only)
  double finish_s = 0;
  double predicted_s = 0;   ///< quote at dispatch (cache-state aware)
  double executed_s = 0;    ///< measured: max over ranks of clock delta
  double retry_after_s = 0; ///< backpressure rejects: suggested retry delay
  i64 peak_bytes = 0;       ///< predicted per-rank peak
};

struct TenantMetrics {
  std::string name;
  double weight = 0;
  i64 admitted = 0, completed = 0, failed = 0;
  i64 rejected_queue = 0, rejected_mem = 0, rejected_vtime = 0,
      rejected_too_large = 0;
  double served_predicted_s = 0;  ///< sum of dispatched predictions
  double served_executed_s = 0;   ///< sum of executed vtime
  i64 peak_outstanding_bytes = 0; ///< high-water of the memory quota gauge
  double p50_latency_s = 0, p99_latency_s = 0;  ///< finish - arrival
  /// Predicted-vs-executed relative drift percentiles over completed
  /// requests (same |e-p|/max(e,p) definition as the CI drift gate).
  double p50_drift = 0, p99_drift = 0, max_drift = 0;
};

struct ServiceReport {
  std::vector<TenantMetrics> tenants;
  std::vector<RequestRecord> records;  ///< every request, decision order
  double vtime_end = 0;
  /// Max over ranks of the engine pool's high-water footprint; the zero-OOM
  /// gate checks this against ServiceConfig::memory_budget_bytes.
  i64 pool_high_water_bytes = 0;
  i64 pool_trims = 0;            ///< this rank's pressure-trim count
  /// Fair-window snapshot: per-tenant served executed vtime accumulated
  /// while EVERY tenant stayed backlogged (the interval where WFQ's
  /// proportional-share guarantee applies), and the vtime it ended.
  std::vector<double> fair_window_served;
  double fair_window_end_s = 0;
  engine::EngineStats engine;    ///< this rank's engine counters
};

/// The per-rank serving loop. Construct inside a rank body and call
/// serve(); every rank must pass identical load/journal (normal collective
/// discipline — the loop itself enforces nothing across ranks).
class PgemmService {
 public:
  PgemmService(simmpi::Comm& world, const ServiceConfig& cfg);
  ~PgemmService();

  PgemmService(const PgemmService&) = delete;
  PgemmService& operator=(const PgemmService&) = delete;

  /// Serves the load to completion. `journal` carries records from prior
  /// (aborted) attempts of the same load: done records are replayed into
  /// accounting without re-execution, failed ones are skipped. When
  /// `journal_out` is non-null (the driver passes it on rank 0 ONLY), every
  /// new decision is appended to it as it is made — including an
  /// in-flight (done = false) record before each dispatch — so an abort
  /// leaves an exact mark of what was lost.
  ServiceReport serve(const std::vector<ServiceRequest>& load,
                      const std::vector<RequestRecord>& journal = {},
                      std::vector<RequestRecord>* journal_out = nullptr);

  const ServiceConfig& config() const { return cfg_; }
  engine::PgemmEngine& engine() { return engine_; }

  /// Re-snapshots the engine's tuning view (collective — see
  /// PgemmEngine::refresh_tuning) and invalidates the CostOracle's memoized
  /// quotes for every key that changed: reported by the refresh diff, or
  /// recorded by the DB update listener since the last call. Admission
  /// prices then re-derive from the tuned plans the engine will actually
  /// run. serve() calls this once at its start, so mid-serve DB writes
  /// apply at the next serve() — quotes and execution never diverge inside
  /// one loop. No-op without a tuning DB.
  std::vector<tuner::TuningKey> refresh_tuning();

 private:
  costmodel::Workload workload_of(const ServiceRequest& r) const;
  /// Executes one admitted request batch; returns executed vtime (max over
  /// ranks of the clock delta, identical on every rank).
  double dispatch(const ServiceRequest& r, double* predicted_out);

  simmpi::Comm world_;
  ServiceConfig cfg_;
  engine::PgemmEngine engine_;
  costmodel::CostOracle oracle_;
  /// Tuning-DB update listener state: changed keys accumulate here (the
  /// listener may fire on a background tuner thread) until the next
  /// refresh_tuning() drains them into oracle invalidations.
  int tuning_listener_ = -1;
  std::mutex tuning_mu_;
  std::vector<tuner::TuningKey> tuning_changed_;
};

}  // namespace ca3dmm::service
