// ServiceDriver: the fault-isolating outer loop of the PGEMM service.
//
// serve() runs inside a cluster; an injected fault (resilience/faults) kills
// the whole run via the cooperative abort — including other tenants'
// in-flight accounting. The driver makes that loss exactly one request
// wide: it owns a journal of committed decisions, lets rank 0 append each
// new decision as it is made (including a done = false mark before every
// dispatch), and wraps the serving loop in a ResilientRunner. When an
// attempt aborts, the runner shrinks the world; on the next attempt the
// driver folds the partial journal into the committed one — marking the
// in-flight request failed — and serve() replays: completed requests
// re-enter accounting with their journaled latencies (never re-executed),
// rejected ones keep their original verdicts, and only work that had not
// yet dispatched runs on the survivors. The faulting tenant therefore eats
// its own failure; everyone else pays at most the recovery latency.
//
// The fold runs on rank 0 before a world barrier and the journal is read
// only after it, so the single-writer journal needs no locking.
#pragma once

#include "resilience/recovery.hpp"
#include "service/service.hpp"

namespace ca3dmm::service {

class ServiceDriver {
 public:
  /// `cfg.tenants` etc. as for PgemmService; `policy` bounds the
  /// shrink-and-replan loop exactly as in resilience/recovery.hpp.
  ServiceDriver(int nranks, simmpi::Machine machine, ServiceConfig cfg,
                resilience::RetryPolicy policy = {});

  /// Faults injected into attempt 1 (remapped across shrinks by the
  /// runner). Attribute them to a tenant via FaultPlan timing so the
  /// isolation tests can place the blast radius.
  void set_fault_plan(simmpi::FaultPlan plan) { faults_ = std::move(plan); }

  /// Serves `load` to completion with shrink-and-replan recovery. Returns
  /// the final attempt's report (rank 0's view — tenant accounting is
  /// identical on every rank by construction). Throws like
  /// ResilientRunner::run when the retry budget is exhausted.
  ServiceReport run(const std::vector<ServiceRequest>& load);

  /// Recovery trace of the last run (attempts, shrinks, backoff).
  const resilience::RecoveryReport& recovery() const { return recovery_; }
  /// Committed decision journal of the last run, decision order.
  const std::vector<RequestRecord>& journal() const { return committed_; }

 private:
  int nranks_;
  simmpi::Machine machine_;
  ServiceConfig cfg_;
  resilience::RetryPolicy policy_;
  simmpi::FaultPlan faults_;
  std::vector<RequestRecord> committed_;
  std::vector<RequestRecord> pending_;
  resilience::RecoveryReport recovery_;
};

}  // namespace ca3dmm::service
