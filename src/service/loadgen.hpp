// Deterministic multi-tenant load generation for the PGEMM service.
//
// Each tenant draws from a shape mix modeled on the paper's serving
// scenarios: iterative solvers re-issuing one shape (§V — density-matrix
// purification, CholeskyQR), general square work, tall-skinny/large-K
// factorization panels, and batches of small multiplies submitted together.
// Arrivals are exponentially spaced from a seeded Rng, so the same
// (spec, nranks) always generates the identical request stream on every
// rank and every run — the property the CI smoke gate and the drift SLA
// metrics depend on.
//
// On 16 ranks the generator pins each shape to its known-optimal grid —
// the configurations the fig5 drift gate holds to 1e-6 predicted-vs-
// executed — so the service's SLA drift percentiles inherit cost-model
// exactness. On any other rank count (including shrunk worlds after a
// fault) grids are left to the solver and drift is reported but not gated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/service.hpp"

namespace ca3dmm::service {

enum class ShapeMix : int {
  kIterative = 0,  ///< one square shape, repeated (plan-cache best case)
  kSquare,         ///< alternating square shapes
  kTallSkinny,     ///< alternating large-M / large-K panels
  kBatchedSmall,   ///< small multiplies, several per request (batch > 1)
};

const char* shape_mix_name(ShapeMix mix);
/// Parses "iterative" / "square" / "tall-skinny" / "batched-small".
ShapeMix shape_mix_from_name(const std::string& name);

/// One tenant of a generated load: serving contract + traffic shape.
struct TenantProfile {
  std::string name;
  double weight = 1.0;
  int priority_class = 0;
  ShapeMix mix = ShapeMix::kIterative;
  int requests = 16;
  /// Mean exponential arrival gap in service vtime seconds; 0 = the whole
  /// stream arrives at t = 0 (instant overload).
  double mean_gap_s = 0;
  // Serving contract, copied into the TenantConfig (defaults = unlimited).
  i64 mem_quota_bytes = i64{1} << 60;
  double vtime_rate = 1e18;
  double vtime_burst = 1e18;
  i64 max_queue = 64;
};

struct LoadSpec {
  std::vector<TenantProfile> tenants;
  std::uint64_t seed = 2026;
  /// Pin shapes to their drift-gated grids when nranks == 16. Disable for
  /// loads that must survive a shrink to fewer ranks (forced grids encode
  /// a rank count; the solver re-plans any count).
  bool exact_grids = true;
};

struct GeneratedLoad {
  /// Tenant contracts matching the profiles, in profile order. The caller
  /// fills ServiceConfig::memory_budget_bytes / starvation / engine knobs.
  std::vector<TenantConfig> tenants;
  std::vector<ServiceRequest> requests;  ///< sorted by (arrival, id)
};

GeneratedLoad generate_load(const LoadSpec& spec, int nranks);

/// The canonical smoke-test tenant set: `n` tenants cycling through the
/// four mixes with weights 1, 1, 2, 4, ... (doubling every 4th tenant).
std::vector<TenantProfile> default_profiles(int n, int requests_each);

}  // namespace ca3dmm::service
