#include "service/loadgen.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ca3dmm::service {

const char* shape_mix_name(ShapeMix mix) {
  switch (mix) {
    case ShapeMix::kIterative: return "iterative";
    case ShapeMix::kSquare: return "square";
    case ShapeMix::kTallSkinny: return "tall-skinny";
    case ShapeMix::kBatchedSmall: return "batched-small";
  }
  return "?";
}

ShapeMix shape_mix_from_name(const std::string& name) {
  if (name == "iterative") return ShapeMix::kIterative;
  if (name == "square") return ShapeMix::kSquare;
  if (name == "tall-skinny") return ShapeMix::kTallSkinny;
  if (name == "batched-small") return ShapeMix::kBatchedSmall;
  CA_REQUIRE(false, "unknown shape mix '%s'", name.c_str());
  return ShapeMix::kIterative;
}

namespace {

struct Shape {
  i64 m, n, k;
  int batch;
  ProcGrid grid;  ///< drift-gated grid on 16 ranks
};

/// The menu of one mix, i-th request. Shapes live on the cost model's
/// exactness domain: evenly divisible by their 16-rank grids (the fig5
/// drift-gate configurations plus same-family variants).
Shape shape_of(ShapeMix mix, int i) {
  switch (mix) {
    case ShapeMix::kIterative:
      return {96, 96, 96, 1, ProcGrid{2, 4, 2}};
    case ShapeMix::kSquare:
      return i % 2 == 0 ? Shape{96, 96, 96, 1, ProcGrid{2, 4, 2}}
                        : Shape{64, 64, 64, 1, ProcGrid{2, 4, 2}};
    case ShapeMix::kTallSkinny:
      return i % 2 == 0 ? Shape{512, 32, 32, 1, ProcGrid{4, 2, 2}}
                        : Shape{32, 32, 512, 1, ProcGrid{2, 2, 4}};
    case ShapeMix::kBatchedSmall:
      return {32, 32, 32, 4, ProcGrid{2, 2, 4}};
  }
  return {96, 96, 96, 1, ProcGrid{2, 4, 2}};
}

}  // namespace

GeneratedLoad generate_load(const LoadSpec& spec, int nranks) {
  CA_REQUIRE(!spec.tenants.empty(), "load spec needs at least one tenant");
  const bool pin_grids = spec.exact_grids && nranks == 16;

  GeneratedLoad out;
  for (size_t t = 0; t < spec.tenants.size(); ++t) {
    const TenantProfile& p = spec.tenants[t];
    TenantConfig tc;
    tc.name = p.name.empty()
                  ? std::string(shape_mix_name(p.mix)) + "-" + std::to_string(t)
                  : p.name;
    tc.weight = p.weight;
    tc.priority_class = p.priority_class;
    tc.mem_quota_bytes = p.mem_quota_bytes;
    tc.vtime_rate = p.vtime_rate;
    tc.vtime_burst = p.vtime_burst;
    tc.max_queue = p.max_queue;
    out.tenants.push_back(tc);

    Rng rng(splitmix64(spec.seed ^ (0x5e91ceULL + t)));
    double arrival = 0;
    for (int i = 0; i < p.requests; ++i) {
      const Shape s = shape_of(p.mix, i);
      ServiceRequest r;
      r.tenant = static_cast<int>(t);
      r.id = static_cast<i64>(t + 1) * 100000 + i;
      if (p.mean_gap_s > 0)
        arrival += -p.mean_gap_s * std::log(1.0 - rng.uniform01());
      r.arrival_s = arrival;
      r.m = s.m;
      r.n = s.n;
      r.k = s.k;
      r.batch = s.batch;
      // Distinct operands per request; every rank derives the same seeds.
      r.seed_a = splitmix64(spec.seed ^ (r.id * 2 + 1));
      r.seed_b = splitmix64(spec.seed ^ (r.id * 2 + 2));
      if (pin_grids) r.opt.force_grid = s.grid;
      out.requests.push_back(r);
    }
  }
  std::sort(out.requests.begin(), out.requests.end(),
            [](const ServiceRequest& a, const ServiceRequest& b) {
              return a.arrival_s != b.arrival_s ? a.arrival_s < b.arrival_s
                                                : a.id < b.id;
            });
  return out;
}

std::vector<TenantProfile> default_profiles(int n, int requests_each) {
  CA_REQUIRE(n >= 1, "need at least one tenant profile");
  const ShapeMix mixes[] = {ShapeMix::kIterative, ShapeMix::kSquare,
                            ShapeMix::kTallSkinny, ShapeMix::kBatchedSmall};
  std::vector<TenantProfile> out;
  for (int t = 0; t < n; ++t) {
    TenantProfile p;
    p.mix = mixes[t % 4];
    p.name = std::string(shape_mix_name(p.mix)) + "-" + std::to_string(t);
    p.weight = static_cast<double>(i64{1} << (t / 4));  // 1,1,1,1,2,2,...
    p.requests = requests_each;
    out.push_back(p);
  }
  return out;
}

}  // namespace ca3dmm::service
