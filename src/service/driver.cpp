#include "service/driver.hpp"

#include <utility>

namespace ca3dmm::service {

ServiceDriver::ServiceDriver(int nranks, simmpi::Machine machine,
                             ServiceConfig cfg,
                             resilience::RetryPolicy policy)
    : nranks_(nranks),
      machine_(std::move(machine)),
      cfg_(std::move(cfg)),
      policy_(policy) {}

ServiceReport ServiceDriver::run(const std::vector<ServiceRequest>& load) {
  committed_.clear();
  pending_.clear();
  resilience::ResilientRunner runner(nranks_, machine_, policy_);
  runner.set_fault_plan(faults_);
  ServiceReport report;
  runner.run([&](simmpi::Comm& world) {
    if (world.rank() == 0) {
      // Fold the previous attempt's partial journal into the committed
      // record: the done = false in-flight mark becomes the one kFailed
      // verdict (charged to its own tenant); every other decision — the
      // completed requests with their executed latencies, the rejections
      // with their original quotes — is committed verbatim and will be
      // replayed, not re-run.
      for (RequestRecord rec : pending_) {
        if (!rec.done) {
          rec.done = true;
          rec.verdict = static_cast<int>(Verdict::kFailed);
          rec.finish_s = rec.start_s;
        }
        committed_.push_back(rec);
      }
      pending_.clear();
    }
    // The barrier publishes rank 0's fold before any rank reads the
    // journal; afterwards the journal is read-only until rank 0's serving
    // loop (the single writer) appends new decisions.
    world.barrier();
    PgemmService svc(world, cfg_);
    ServiceReport r =
        svc.serve(load, committed_, world.rank() == 0 ? &pending_ : nullptr);
    if (world.rank() == 0) report = r;
  });
  recovery_ = runner.report();
  // Fold the successful attempt too, so journal() is the complete record.
  committed_.insert(committed_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  return report;
}

}  // namespace ca3dmm::service
