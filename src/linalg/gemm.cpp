#include "linalg/gemm.hpp"

#include <algorithm>
#include <vector>

namespace ca3dmm {

namespace {

// Cache blocking parameters (elements). MC x KC panel of A and KC x NC panel
// of B stay resident while the micro-kernel streams C.
constexpr i64 kMC = 128;
constexpr i64 kKC = 256;
constexpr i64 kNC = 512;
constexpr i64 kMR = 4;  // micro-tile rows
constexpr i64 kNR = 8;  // micro-tile cols

/// Reads op(A)(i, p): A stored row-major with row stride lda.
template <typename T>
inline T at_a(const T* a, i64 lda, bool ta, i64 i, i64 p) {
  return ta ? a[p * lda + i] : a[i * lda + p];
}

template <typename T>
inline T at_b(const T* b, i64 ldb, bool tb, i64 p, i64 j) {
  return tb ? b[j * ldb + p] : b[p * ldb + j];
}

/// Packs op(A)(i0:i0+mc, p0:p0+kc) into column-of-row-tiles order: tile rows
/// of kMR, contiguous in p.
template <typename T>
void pack_a(const T* a, i64 lda, bool ta, i64 i0, i64 mc, i64 p0, i64 kc,
            T* pa) {
  for (i64 it = 0; it < mc; it += kMR) {
    const i64 mr = std::min(kMR, mc - it);
    for (i64 p = 0; p < kc; ++p) {
      for (i64 r = 0; r < mr; ++r)
        *pa++ = at_a(a, lda, ta, i0 + it + r, p0 + p);
      for (i64 r = mr; r < kMR; ++r) *pa++ = T{};
    }
  }
}

template <typename T>
void pack_b(const T* b, i64 ldb, bool tb, i64 p0, i64 kc, i64 j0, i64 nc,
            T* pb) {
  for (i64 jt = 0; jt < nc; jt += kNR) {
    const i64 nr = std::min(kNR, nc - jt);
    for (i64 p = 0; p < kc; ++p) {
      for (i64 r = 0; r < nr; ++r)
        *pb++ = at_b(b, ldb, tb, p0 + p, j0 + jt + r);
      for (i64 r = nr; r < kNR; ++r) *pb++ = T{};
    }
  }
}

/// kMR x kNR micro-kernel on packed panels; accumulates into a local tile
/// and adds the valid part into C. The panels never alias C, so __restrict
/// lets the compiler keep the accumulators in registers and vectorize the
/// fully unrolled kMR x kNR update.
template <typename T>
void micro_kernel(i64 kc, T alpha, const T* __restrict pa,
                  const T* __restrict pb, T* __restrict c, i64 ldc, i64 mr,
                  i64 nr) {
  T acc[kMR][kNR] = {};
  for (i64 p = 0; p < kc; ++p) {
    const T* __restrict a = pa + p * kMR;
    const T* __restrict b = pb + p * kNR;
#pragma GCC unroll 4
    for (i64 i = 0; i < kMR; ++i) {
      const T ai = a[i];
#pragma GCC unroll 8
      for (i64 j = 0; j < kNR; ++j) acc[i][j] += ai * b[j];
    }
  }
  for (i64 i = 0; i < mr; ++i)
    for (i64 j = 0; j < nr; ++j) c[i * ldc + j] += alpha * acc[i][j];
}

/// Thread-local packing scratch, reused across gemm_blocked calls: each
/// Cannon step (and each aggregated multi-shift flush) calls gemm_blocked
/// once, and with many simmpi ranks per process the per-call allocation of
/// two panel buffers showed up as allocator contention.
template <typename T>
struct PackScratch {
  std::vector<T> pa, pb;
  static PackScratch& get() {
    static thread_local PackScratch s{
        std::vector<T>(static_cast<size_t>(((kMC + kMR - 1) / kMR) * kMR *
                                           kKC)),
        std::vector<T>(static_cast<size_t>(((kNC + kNR - 1) / kNR) * kNR *
                                           kKC))};
    return s;
  }
};

}  // namespace

template <typename T>
void gemm_ref(bool trans_a, bool trans_b, i64 m, i64 n, i64 k, T alpha,
              const T* a, i64 lda, const T* b, i64 ldb, T* c, i64 ldc) {
  for (i64 i = 0; i < m; ++i)
    for (i64 p = 0; p < k; ++p) {
      const T ai = at_a(a, lda, trans_a, i, p);
      if (ai == T{}) continue;
      for (i64 j = 0; j < n; ++j)
        c[i * ldc + j] += alpha * ai * at_b(b, ldb, trans_b, p, j);
    }
}

template <typename T>
void gemm_blocked(bool trans_a, bool trans_b, i64 m, i64 n, i64 k, T alpha,
                  const T* a, i64 lda, const T* b, i64 ldb, T* c, i64 ldc) {
  if (m == 0 || n == 0 || k == 0) return;
  // Packing buffers sized for one panel each, thread-local so repeated
  // panel GEMMs don't re-allocate.
  PackScratch<T>& scratch = PackScratch<T>::get();
  std::vector<T>& pa = scratch.pa;
  std::vector<T>& pb = scratch.pb;

  for (i64 j0 = 0; j0 < n; j0 += kNC) {
    const i64 nc = std::min(kNC, n - j0);
    for (i64 p0 = 0; p0 < k; p0 += kKC) {
      const i64 kc = std::min(kKC, k - p0);
      pack_b(b, ldb, trans_b, p0, kc, j0, nc, pb.data());
      for (i64 i0 = 0; i0 < m; i0 += kMC) {
        const i64 mc = std::min(kMC, m - i0);
        pack_a(a, lda, trans_a, i0, mc, p0, kc, pa.data());
        for (i64 jt = 0; jt < nc; jt += kNR) {
          const i64 nr = std::min(kNR, nc - jt);
          const T* pbt = pb.data() + (jt / kNR) * kNR * kc;
          for (i64 it = 0; it < mc; it += kMR) {
            const i64 mr = std::min(kMR, mc - it);
            const T* pat = pa.data() + (it / kMR) * kMR * kc;
            micro_kernel(kc, alpha, pat, pbt,
                         c + (i0 + it) * ldc + (j0 + jt), ldc, mr, nr);
          }
        }
      }
    }
  }
}

template void gemm_ref<float>(bool, bool, i64, i64, i64, float, const float*,
                              i64, const float*, i64, float*, i64);
template void gemm_ref<double>(bool, bool, i64, i64, i64, double, const double*,
                               i64, const double*, i64, double*, i64);
template void gemm_blocked<float>(bool, bool, i64, i64, i64, float,
                                  const float*, i64, const float*, i64, float*,
                                  i64);
template void gemm_blocked<double>(bool, bool, i64, i64, i64, double,
                                   const double*, i64, const double*, i64,
                                   double*, i64);

}  // namespace ca3dmm
