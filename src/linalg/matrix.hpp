// Dense row-major matrix container and element-wise utilities.
//
// This is the local (per-rank) building block: distributed matrices in this
// library are collections of Matrix blocks placed by a layout (see
// layout/block_layout.hpp).
#pragma once

#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "common/partition.hpp"
#include "common/rng.hpp"

namespace ca3dmm {

/// Owning row-major matrix.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(i64 rows, i64 cols) { resize(rows, cols); }

  void resize(i64 rows, i64 cols) {
    CA_REQUIRE(rows >= 0 && cols >= 0, "bad matrix shape %lld x %lld",
               static_cast<long long>(rows), static_cast<long long>(cols));
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<size_t>(rows * cols), T{});
  }

  i64 rows() const { return rows_; }
  i64 cols() const { return cols_; }
  i64 size() const { return rows_ * cols_; }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator()(i64 i, i64 j) { return data_[static_cast<size_t>(i * cols_ + j)]; }
  const T& operator()(i64 i, i64 j) const {
    return data_[static_cast<size_t>(i * cols_ + j)];
  }

  void fill_zero() { std::memset(data_.data(), 0, data_.size() * sizeof(T)); }

  /// Fills with the deterministic virtual random matrix `seed`, reading the
  /// global coordinates (row0 + i, col0 + j): distributed blocks filled this
  /// way agree with a serially filled global matrix.
  void fill_random(std::uint64_t seed, i64 row0 = 0, i64 col0 = 0) {
    for (i64 i = 0; i < rows_; ++i)
      for (i64 j = 0; j < cols_; ++j)
        (*this)(i, j) = matrix_entry<T>(seed, row0 + i, col0 + j);
  }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  i64 rows_ = 0, cols_ = 0;
  std::vector<T> data_;
};

/// max |a - b| over all entries; matrices must have equal shape.
template <typename T>
double max_abs_diff(const Matrix<T>& a, const Matrix<T>& b) {
  CA_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
             "shape mismatch in max_abs_diff");
  double m = 0;
  for (i64 i = 0; i < a.size(); ++i) {
    const double d = std::fabs(static_cast<double>(a.data()[i]) -
                               static_cast<double>(b.data()[i]));
    if (d > m) m = d;
  }
  return m;
}

/// Frobenius norm.
template <typename T>
double fro_norm(const Matrix<T>& a) {
  double s = 0;
  for (i64 i = 0; i < a.size(); ++i) {
    const double v = static_cast<double>(a.data()[i]);
    s += v * v;
  }
  return std::sqrt(s);
}

/// Copies a rectangular block of `src` (top-left at (sr, sc)) into `dst` at
/// (dr, dc); `r` x `c` elements.
template <typename T>
void copy_block(const Matrix<T>& src, i64 sr, i64 sc, Matrix<T>& dst, i64 dr,
                i64 dc, i64 r, i64 c) {
  CA_ASSERT(sr + r <= src.rows() && sc + c <= src.cols());
  CA_ASSERT(dr + r <= dst.rows() && dc + c <= dst.cols());
  for (i64 i = 0; i < r; ++i)
    std::memcpy(&dst(dr + i, dc), &src(sr + i, sc),
                static_cast<size_t>(c) * sizeof(T));
}

}  // namespace ca3dmm
