// Local (shared-memory) GEMM kernels.
//
// The paper offloads local matrix multiplication to an optimized BLAS (MKL /
// cuBLAS); none is available here, so the library ships its own cache-blocked
// kernel. Simulated compute time is charged from the machine model, so the
// kernel's host speed does not distort reproduced performance shapes — it
// only needs to be correct and not painfully slow for tests.
//
//   gemm_ref     — triple-loop reference, the oracle for all tests
//   gemm_blocked — packed, cache-blocked kernel used by the algorithms
//   gemm_flops   — flop count charged to the virtual clock
#pragma once

#include "common/partition.hpp"
#include "linalg/matrix.hpp"

namespace ca3dmm {

/// C (m x n, row stride ldc) += alpha * op(A) * op(B); op is transpose iff
/// trans_x. A is stored row-major as (m x k) with row stride lda when
/// !trans_a, as (k x m) when trans_a; similarly B.
template <typename T>
void gemm_ref(bool trans_a, bool trans_b, i64 m, i64 n, i64 k, T alpha,
              const T* a, i64 lda, const T* b, i64 ldb, T* c, i64 ldc);

template <typename T>
void gemm_blocked(bool trans_a, bool trans_b, i64 m, i64 n, i64 k, T alpha,
                  const T* a, i64 lda, const T* b, i64 ldb, T* c, i64 ldc);

/// Dense (tight leading dimension) convenience overloads.
template <typename T>
void gemm_ref(bool trans_a, bool trans_b, i64 m, i64 n, i64 k, T alpha,
              const T* a, const T* b, T* c) {
  gemm_ref(trans_a, trans_b, m, n, k, alpha, a, trans_a ? m : k, b,
           trans_b ? k : n, c, n);
}

template <typename T>
void gemm_blocked(bool trans_a, bool trans_b, i64 m, i64 n, i64 k, T alpha,
                  const T* a, const T* b, T* c) {
  gemm_blocked(trans_a, trans_b, m, n, k, alpha, a, trans_a ? m : k, b,
               trans_b ? k : n, c, n);
}

/// Convenience: C += A * B on Matrix objects (no transposes).
template <typename T>
void gemm_acc(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c) {
  CA_REQUIRE(a.cols() == b.rows() && a.rows() == c.rows() &&
                 b.cols() == c.cols(),
             "gemm shape mismatch: (%lld x %lld)(%lld x %lld) -> (%lld x %lld)",
             static_cast<long long>(a.rows()), static_cast<long long>(a.cols()),
             static_cast<long long>(b.rows()), static_cast<long long>(b.cols()),
             static_cast<long long>(c.rows()), static_cast<long long>(c.cols()));
  gemm_blocked<T>(false, false, a.rows(), b.cols(), a.cols(), T{1}, a.data(),
                  b.data(), c.data());
}

/// Flops of one GEMM call (multiply + add).
inline double gemm_flops(i64 m, i64 n, i64 k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

/// Bytes of operand/result data touched by one GEMM call (used by the GPU
/// device model for PCIe staging cost).
inline double gemm_bytes(i64 m, i64 n, i64 k, i64 esize) {
  return static_cast<double>(esize) *
         (static_cast<double>(m) * k + static_cast<double>(k) * n +
          2.0 * static_cast<double>(m) * n);
}

/// Bytes of the A/B panels only — what a multi-step engine stages per call
/// when the C accumulator stays resident on the device across steps.
inline double gemm_operand_bytes(i64 m, i64 n, i64 k, i64 esize) {
  return static_cast<double>(esize) *
         (static_cast<double>(m) * k + static_cast<double>(k) * n);
}

/// One-time staging of the C block (download + upload).
inline double gemm_result_bytes(i64 m, i64 n, i64 esize) {
  return 2.0 * static_cast<double>(esize) * static_cast<double>(m) *
         static_cast<double>(n);
}

}  // namespace ca3dmm
