#include "common/partition.hpp"

namespace ca3dmm {

// The canonical partition gives the first (n mod p) blocks size ceil(n/p)
// and the rest size floor(n/p). This matches the paper's ⌈m/p_m⌉ / ⌊m/p_m⌋
// block-size statement.

i64 block_size(i64 n, i64 p, i64 b) {
  CA_ASSERT_MSG(p > 0 && b >= 0 && b < p, "n=%lld p=%lld b=%lld",
                static_cast<long long>(n), static_cast<long long>(p),
                static_cast<long long>(b));
  const i64 q = n / p, r = n % p;
  return q + (b < r ? 1 : 0);
}

i64 block_start(i64 n, i64 p, i64 b) {
  CA_ASSERT_MSG(p > 0 && b >= 0 && b <= p, "n=%lld p=%lld b=%lld",
                static_cast<long long>(n), static_cast<long long>(p),
                static_cast<long long>(b));
  const i64 q = n / p, r = n % p;
  return q * b + (b < r ? b : r);
}

Range block_range(i64 n, i64 p, i64 b) {
  return Range{block_start(n, p, b), block_start(n, p, b) + block_size(n, p, b)};
}

i64 block_of_index(i64 n, i64 p, i64 i) {
  CA_ASSERT(i >= 0 && i < n);
  const i64 q = n / p, r = n % p;
  // First r blocks have size q+1 and cover [0, r*(q+1)).
  if (q == 0) return i;  // n < p: block b owns index b for b < n
  const i64 big = r * (q + 1);
  if (i < big) return i / (q + 1);
  return r + (i - big) / q;
}

std::vector<Range> partition(i64 n, i64 p) {
  std::vector<Range> out;
  out.reserve(static_cast<size_t>(p));
  for (i64 b = 0; b < p; ++b) out.push_back(block_range(n, p, b));
  return out;
}

}  // namespace ca3dmm
