// Error handling for the CA3DMM library.
//
// The library throws ca3dmm::Error for user-facing precondition violations
// (bad matrix dimensions, mismatched layouts, ...) and uses CA_ASSERT for
// internal invariants that indicate a bug in the library itself.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ca3dmm {

/// Exception thrown on user-facing precondition violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::fprintf(stderr, "CA_ASSERT failed: %s at %s:%d%s%s\n", expr, file, line,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace detail

/// Formats like std::format but with printf syntax; small helper to keep the
/// library dependency-free.
template <typename... Args>
std::string strprintf(const char* fmt, Args... args) {
  const int n = std::snprintf(nullptr, 0, fmt, args...);
  // snprintf returns a negative value on encoding errors; fall back to the
  // raw format string rather than constructing a string of bogus size.
  if (n < 0) return std::string(fmt);
  std::string out(static_cast<size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}

inline std::string strprintf(const char* fmt) { return std::string(fmt); }

}  // namespace ca3dmm

/// Internal invariant check. Aborts: an invariant failure means the library
/// itself is wrong, and unwinding across rank threads would hide the bug.
#define CA_ASSERT(expr)                                                   \
  do {                                                                    \
    if (!(expr))                                                          \
      ::ca3dmm::detail::assert_fail(#expr, __FILE__, __LINE__, "");       \
  } while (0)

#define CA_ASSERT_MSG(expr, ...)                                          \
  do {                                                                    \
    if (!(expr))                                                          \
      ::ca3dmm::detail::assert_fail(#expr, __FILE__, __LINE__,            \
                                    ::ca3dmm::strprintf(__VA_ARGS__));    \
  } while (0)

/// User-facing precondition check: throws ca3dmm::Error.
#define CA_REQUIRE(expr, ...)                                             \
  do {                                                                    \
    if (!(expr))                                                          \
      throw ::ca3dmm::Error(::ca3dmm::strprintf(__VA_ARGS__));            \
  } while (0)
