// Plain-text table printer used by the benchmark harness to emit
// paper-style tables (Table I/II/III rows, figure series).
#pragma once

#include <string>
#include <vector>

namespace ca3dmm {

/// Accumulates rows of strings and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats cells with printf-style specs.
  void add_row_f(std::initializer_list<std::string> cells);

  /// Renders the table with a rule under the header.
  std::string str() const;

  /// Prints to stdout.
  void print() const;

  /// Renders as CSV (header + rows); cells are written verbatim, with
  /// quoting only when a cell contains a comma or quote.
  std::string csv() const;

  /// Writes the CSV rendering to `path` (plot-ready figure data).
  void write_csv(const std::string& path) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a byte count as MB with the paper's granularity.
std::string format_mb(double bytes);

/// Formats seconds with 2-3 significant digits like the paper's tables.
std::string format_seconds(double s);

}  // namespace ca3dmm
