// Canonical 1-D block partition math.
//
// Every distributed object in this library splits an index range [0, n) into
// p canonical blocks whose sizes are either ceil(n/p) or floor(n/p): the
// first (n mod p) blocks get the extra element. CA3DMM's analysis (paper
// §III-A) assumes exactly this partition, and using one canonical function
// everywhere guarantees that independently computed views of the same
// partition agree.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace ca3dmm {

using i64 = std::int64_t;

/// Half-open index range [lo, hi).
struct Range {
  i64 lo = 0;
  i64 hi = 0;

  i64 size() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
  bool contains(i64 i) const { return lo <= i && i < hi; }

  friend bool operator==(const Range&, const Range&) = default;
};

/// Intersection of two ranges (possibly empty).
inline Range intersect(const Range& a, const Range& b) {
  Range r{a.lo > b.lo ? a.lo : b.lo, a.hi < b.hi ? a.hi : b.hi};
  if (r.hi < r.lo) r.hi = r.lo;
  return r;
}

/// Size of block `b` when [0, n) is split into `p` canonical blocks.
i64 block_size(i64 n, i64 p, i64 b);

/// Starting index of block `b`.
i64 block_start(i64 n, i64 p, i64 b);

/// Range of block `b`.
Range block_range(i64 n, i64 p, i64 b);

/// Index of the block that contains global index `i`.
i64 block_of_index(i64 n, i64 p, i64 i);

/// All p ranges of the canonical partition of [0, n).
std::vector<Range> partition(i64 n, i64 p);

/// ceil(a / b) for positive integers.
inline i64 ceil_div(i64 a, i64 b) {
  CA_ASSERT(b > 0);
  return (a + b - 1) / b;
}

}  // namespace ca3dmm
