#include "common/table.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace ca3dmm {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  CA_REQUIRE(cells.size() == header_.size(),
             "TextTable row has %zu cells, header has %zu", cells.size(),
             header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_f(std::initializer_list<std::string> cells) {
  add_row(std::vector<std::string>(cells));
}

std::string TextTable::str() const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += "  ";
      // Right-align every cell; numeric-heavy tables read better that way.
      out.append(width[c] - row[c].size(), ' ');
      out += row[c];
    }
    out += '\n';
  };

  std::string out;
  emit_row(header_, out);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void TextTable::print() const {
  const std::string s = str();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string TextTable::csv() const {
  auto emit = [](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      const std::string& cell = row[c];
      if (cell.find(',') != std::string::npos ||
          cell.find('"') != std::string::npos) {
        out += '"';
        for (char ch : cell) {
          if (ch == '"') out += '"';
          out += ch;
        }
        out += '"';
      } else {
        out += cell;
      }
    }
    out += '\n';
  };
  std::string out;
  emit(header_, out);
  for (const auto& row : rows_) emit(row, out);
  return out;
}

void TextTable::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  CA_REQUIRE(f != nullptr, "cannot open %s for writing", path.c_str());
  const std::string s = csv();
  std::fwrite(s.data(), 1, s.size(), f);
  std::fclose(f);
}

std::string format_mb(double bytes) {
  return strprintf("%.0f", bytes / (1024.0 * 1024.0));
}

std::string format_seconds(double s) {
  if (s >= 10.0) return strprintf("%.1f", s);
  return strprintf("%.2f", s);
}

}  // namespace ca3dmm
