// Deterministic random number generation.
//
// Tests and benchmarks need reproducible matrices that every rank can
// generate locally (each rank fills only the entries it owns), so the
// generator must be cheaply seekable by (row, col) without a shared stream.
#pragma once

#include <cstdint>

namespace ca3dmm {

/// SplitMix64: tiny, high-quality 64-bit mixer. Stateless form used to hash
/// (seed, index) pairs so any element of a virtual random matrix can be
/// produced independently on any rank.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform value in [-0.5, 0.5) derived from (seed, row, col). All ranks
/// computing the same (seed, i, j) get the same value, which is how
/// distributed test matrices stay consistent without communication.
template <typename T>
T matrix_entry(std::uint64_t seed, std::int64_t i, std::int64_t j) {
  const std::uint64_t h =
      splitmix64(seed ^ splitmix64(static_cast<std::uint64_t>(i) * 0x100000001b3ULL +
                                   static_cast<std::uint64_t>(j)));
  // Top 53 bits -> double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return static_cast<T>(u - 0.5);
}

/// Small stateful PRNG for shuffles and parameter sampling in tests.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ = splitmix64(state_);
    return state_;
  }

  /// Uniform integer in [lo, hi].
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next() % static_cast<std::uint64_t>(hi - lo + 1));
  }

  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

}  // namespace ca3dmm
