// loadgen: deterministic multi-tenant service smoke driver.
//
//   loadgen [tenants] [requests_each] [seed] [out.json]
//
// Generates the canonical tenant set (service/loadgen.hpp: the four shape
// mixes cycled, weights doubling every 4th tenant) on the cost model's
// exactness domain (P = 16 over 4 simulated nodes), serves it through the
// full ServiceDriver path (journal + shrink-and-replan wrapping, no faults
// injected), and writes the per-tenant SLA report as JSON.
//
// Exit status gates the run for CI:
//   - zero OOM: the engine pool's high-water footprint stays under the
//     configured per-rank budget on every rank;
//   - zero cross-tenant error leakage: no tenant records a failure in a
//     fault-free run;
//   - exactness: every tenant's p99 predicted-vs-executed latency drift
//     stays within the CI drift gate's 1e-6 rtol.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "costmodel/admission.hpp"
#include "service/driver.hpp"
#include "service/loadgen.hpp"

namespace {

using namespace ca3dmm;
using service::GeneratedLoad;
using service::LoadSpec;
using service::ServiceConfig;
using service::ServiceReport;
using service::TenantMetrics;
using simmpi::Machine;

constexpr int kRanks = 16;
constexpr double kDriftRtol = 1e-6;

Machine exact_machine() {
  Machine mach = Machine::phoenix_mpi();
  mach.ranks_per_node = 4;
  mach.cores_per_node = 4;
  return mach;
}

}  // namespace

int main(int argc, char** argv) {
  const int tenants = argc > 1 ? std::atoi(argv[1]) : 8;
  const int requests_each = argc > 2 ? std::atoi(argv[2]) : 6;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2026;
  const char* out_path = argc > 4 ? argv[4] : "BENCH_service.json";
  if (tenants < 1 || requests_each < 1) {
    std::fprintf(stderr,
                 "usage: %s [tenants>=1] [requests_each>=1] [seed] "
                 "[out.json]\n",
                 argv[0]);
    return 2;
  }

  LoadSpec spec;
  spec.seed = seed;
  spec.tenants = service::default_profiles(tenants, requests_each);
  const GeneratedLoad load = service::generate_load(spec, kRanks);

  // Per-rank pool budget: twice the largest single-request predicted peak —
  // tight enough to exercise pressure trims, safe for every request.
  costmodel::CostOracle oracle(kRanks, exact_machine());
  i64 max_peak = 0;
  for (const service::ServiceRequest& r : load.requests) {
    costmodel::Workload w{r.m, r.n, r.k};
    w.force_grid = r.opt.force_grid;
    max_peak = std::max(
        max_peak, oracle.quote(costmodel::Algo::kCa3dmm, w).peak_bytes);
  }

  ServiceConfig cfg;
  cfg.tenants = load.tenants;
  cfg.memory_budget_bytes = 2 * max_peak;

  service::ServiceDriver driver(kRanks, exact_machine(), cfg);
  const ServiceReport rep = driver.run(load.requests);

  bool ok = true;
  const auto gate = [&ok](bool cond, const char* what) {
    if (!cond) {
      std::printf("SMOKE GATE FAILED: %s\n", what);
      ok = false;
    }
  };

  std::printf("loadgen: %d tenants x %d requests, seed %llu, P=%d\n", tenants,
              requests_each, (unsigned long long)seed, kRanks);
  for (const TenantMetrics& m : rep.tenants) {
    std::printf(
        "  %-16s w=%-4g done=%-3lld rej=%-3lld p50=%.3fms p99=%.3fms "
        "p99drift=%.2e\n",
        m.name.c_str(), m.weight, (long long)m.completed,
        (long long)(m.rejected_queue + m.rejected_mem + m.rejected_vtime),
        m.p50_latency_s * 1e3, m.p99_latency_s * 1e3, m.p99_drift);
    gate(m.completed > 0, "tenant starved (zero completions)");
    gate(m.failed == 0, "cross-tenant error leakage (failure without fault)");
    gate(m.p99_drift <= kDriftRtol && m.p50_drift <= kDriftRtol,
         "p99 drift outside the 1e-6 rtol gate");
  }
  gate(rep.pool_high_water_bytes <= cfg.memory_budget_bytes,
       "pool footprint exceeded the memory budget (OOM)");
  gate(driver.recovery().attempts_used() == 1,
       "fault-free run took more than one attempt");
  std::printf("pool high water %lld B <= budget %lld B; vtime end %.3f ms; "
              "engine plan hit rate %.0f%%\n",
              (long long)rep.pool_high_water_bytes,
              (long long)cfg.memory_budget_bytes, rep.vtime_end * 1e3,
              rep.engine.plan_hit_rate() * 100);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 2;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"service_smoke\",\n  \"ranks\": %d,\n"
               "  \"tenants\": %d,\n  \"requests_each\": %d,\n"
               "  \"seed\": %llu,\n  \"drift_rtol_gate\": %.1e,\n",
               kRanks, tenants, requests_each, (unsigned long long)seed,
               kDriftRtol);
  std::fprintf(f, "  \"tenant_metrics\": [\n");
  for (size_t t = 0; t < rep.tenants.size(); ++t) {
    const TenantMetrics& m = rep.tenants[t];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"weight\": %g, \"completed\": %lld, "
        "\"failed\": %lld,\n     \"rejected_queue\": %lld, \"rejected_mem\": "
        "%lld, \"rejected_vtime\": %lld,\n     \"served_predicted_s\": %.9f, "
        "\"served_executed_s\": %.9f,\n     \"p50_latency_s\": %.9f, "
        "\"p99_latency_s\": %.9f,\n     \"p50_drift\": %.3e, \"p99_drift\": "
        "%.3e, \"max_drift\": %.3e}%s\n",
        m.name.c_str(), m.weight, (long long)m.completed, (long long)m.failed,
        (long long)m.rejected_queue, (long long)m.rejected_mem,
        (long long)m.rejected_vtime, m.served_predicted_s, m.served_executed_s,
        m.p50_latency_s, m.p99_latency_s, m.p50_drift, m.p99_drift,
        m.max_drift, t + 1 < rep.tenants.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"pool\": {\"budget_bytes\": %lld, "
               "\"high_water_bytes\": %lld, \"pressure_trims\": %lld},\n"
               "  \"engine\": {\"requests\": %lld, \"plan_hits\": %lld, "
               "\"plan_misses\": %lld},\n"
               "  \"vtime_end_s\": %.9f,\n  \"gates_ok\": %s\n}\n",
               (long long)cfg.memory_budget_bytes,
               (long long)rep.pool_high_water_bytes, (long long)rep.pool_trims,
               (long long)rep.engine.requests, (long long)rep.engine.plan_hits,
               (long long)rep.engine.plan_misses, rep.vtime_end,
               ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return ok ? 0 : 1;
}
