// example_AB — command-line PGEMM driver matching the paper artifact.
//
// The SC22 artifact's example program is invoked as
//
//   mpirun -np <nprocs> ./example_AB.exe <M> <N> <K> <transA> <transB>
//          <validation> <ntest> <dtype> [mp np kp]
//
// This tool accepts the same positional arguments (nprocs first, since there
// is no mpirun here — ranks are simulated threads) and produces the same
// style of on-screen output: partition info, per-phase timing lines for each
// test repetition, engine summaries, and a correctness check.
//
//   ./example_AB <nprocs> <M> <N> <K> <transA> <transB> <validation>
//                <ntest> <dtype> [mp np kp]
//
//   transA/transB: 0|1      validation: 0|1      ntest: repetitions
//   dtype: 0 = simulated CPU cluster, 1 = simulated GPU cluster
//   mp np kp: optional forced process grid (mp*np*kp <= nprocs)
//
// Run with no arguments for a small demonstration configuration.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/ca3dmm.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "simmpi/cluster.hpp"

using namespace ca3dmm;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;
using simmpi::Phase;

namespace {

struct Args {
  int nprocs = 8;
  i64 m = 320, n = 320, k = 320;
  bool trans_a = false, trans_b = false;
  bool validate = true;
  int ntest = 3;
  int dtype = 0;
  std::optional<ProcGrid> grid{};
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <nprocs> <M> <N> <K> <transA> <transB> "
               "<validation> <ntest> <dtype> [mp np kp]\n",
               argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  if (argc == 1) return a;  // demo defaults
  if (argc != 10 && argc != 13) usage(argv[0]);
  a.nprocs = std::atoi(argv[1]);
  a.m = std::atoll(argv[2]);
  a.n = std::atoll(argv[3]);
  a.k = std::atoll(argv[4]);
  a.trans_a = std::atoi(argv[5]) != 0;
  a.trans_b = std::atoi(argv[6]) != 0;
  a.validate = std::atoi(argv[7]) != 0;
  a.ntest = std::atoi(argv[8]);
  a.dtype = std::atoi(argv[9]);
  if (argc == 13)
    a.grid = ProcGrid{std::atoi(argv[10]), std::atoi(argv[11]),
                      std::atoi(argv[12])};
  if (a.nprocs < 1 || a.m < 1 || a.n < 1 || a.k < 1 || a.ntest < 0)
    usage(argv[0]);
  return a;
}

void print_ms_row(const char* label, const std::vector<double>& ms) {
  std::printf("%-18s:", label);
  for (double v : ms) std::printf(" %.0f", v * 1e3);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  Machine mach = a.dtype == 1 ? Machine::phoenix_gpu() : Machine::phoenix_mpi();

  Ca3dmmOptions opt;
  opt.force_grid = a.grid;
  const Ca3dmmPlan plan = Ca3dmmPlan::make(a.m, a.n, a.k, a.nprocs, opt);

  std::printf("Test problem size m * n * k : %lld * %lld * %lld\n",
              static_cast<long long>(a.m), static_cast<long long>(a.n),
              static_cast<long long>(a.k));
  std::printf("Transpose A / B             : %d / %d\n", a.trans_a, a.trans_b);
  std::printf("Number of tests             : %d\n", a.ntest);
  std::printf("Check result correctness    : %d\n", a.validate);
  std::printf("Device type                 : %d\n", a.dtype);
  std::printf("CA3DMM partition info:\n");
  std::printf("Process grid mp * np * kp   : %d * %d * %d\n", plan.grid().pm,
              plan.grid().pn, plan.grid().pk);
  std::printf("Work cuboid  mb * nb * kb   : %lld * %lld * %lld\n",
              static_cast<long long>(ceil_div(a.m, plan.grid().pm)),
              static_cast<long long>(ceil_div(a.n, plan.grid().pn)),
              static_cast<long long>(ceil_div(a.k, plan.grid().pk)));
  std::printf("Process utilization         : %.2f %%\n",
              100.0 * plan.active() / a.nprocs);
  std::printf("Comm. volume / lower bound  : %.2f\n",
              plan.comm_volume_per_rank() / plan.volume_lower_bound());

  // 1-D column user layouts, like the artifact's example program.
  const BlockLayout a_lay = BlockLayout::col_1d(a.trans_a ? a.k : a.m,
                                                a.trans_a ? a.m : a.k, a.nprocs);
  const BlockLayout b_lay = BlockLayout::col_1d(a.trans_b ? a.n : a.k,
                                                a.trans_b ? a.k : a.n, a.nprocs);
  const BlockLayout c_lay = BlockLayout::col_1d(a.m, a.n, a.nprocs);

  // Reference result for validation (serial).
  Matrix<double> c_ref;
  if (a.validate) {
    Matrix<double> am(a_lay.rows(), a_lay.cols()), bm(b_lay.rows(), b_lay.cols());
    am.fill_random(1);
    bm.fill_random(2);
    c_ref.resize(a.m, a.n);
    gemm_ref<double>(a.trans_a, a.trans_b, a.m, a.n, a.k, 1.0, am.data(),
                     bm.data(), c_ref.data());
  }

  std::vector<double> t_total, t_redist, t_repl, t_cannon, t_gemm, t_reduce;
  long errors = 0;

  Cluster cl(a.nprocs, mach);
  for (int t = 0; t < std::max(1, a.ntest); ++t) {
    cl.run([&](Comm& world) {
      const int me = world.rank();
      auto fill = [&](const BlockLayout& lay, std::uint64_t seed,
                      std::vector<double>& buf) {
        buf.assign(static_cast<size_t>(lay.local_size(me)), 0.0);
        i64 pos = 0;
        for (const Rect& r : lay.rects_of(me))
          for (i64 i = r.r.lo; i < r.r.hi; ++i)
            for (i64 j = r.c.lo; j < r.c.hi; ++j)
              buf[static_cast<size_t>(pos++)] = matrix_entry<double>(seed, i, j);
      };
      std::vector<double> al, bl;
      fill(a_lay, 1, al);
      fill(b_lay, 2, bl);
      std::vector<double> clq(static_cast<size_t>(c_lay.local_size(me)));
      ca3dmm_multiply<double>(world, plan, a.trans_a, a.trans_b, a_lay,
                              al.data(), b_lay, bl.data(), c_lay, clq.data());
      if (a.validate) {
        i64 pos = 0;
        long my_err = 0;
        for (const Rect& r : c_lay.rects_of(me))
          for (i64 i = r.r.lo; i < r.r.hi; ++i)
            for (i64 j = r.c.lo; j < r.c.hi; ++j)
              if (std::abs(clq[static_cast<size_t>(pos++)] - c_ref(i, j)) >
                  1e-10 * static_cast<double>(a.k))
                my_err++;
        if (my_err) std::fprintf(stderr, "rank %d: %ld errors\n", me, my_err);
        errors += my_err;
      }
    });
    const auto agg = cl.aggregate_stats();
    t_total.push_back(agg.vtime);
    t_redist.push_back(agg.phase(Phase::kRedistribute));
    t_repl.push_back(agg.phase(Phase::kReplicate));
    t_cannon.push_back(agg.phase(Phase::kShift));
    t_gemm.push_back(agg.phase(Phase::kCompute));
    t_reduce.push_back(agg.phase(Phase::kReduce));
  }

  std::printf("\nPer-test simulated timings (ms):\n");
  print_ms_row("A, B, C redist", t_redist);
  print_ms_row("A / B allgather", t_repl);
  print_ms_row("2D Cannon", t_cannon);
  print_ms_row("local GEMM", t_gemm);
  print_ms_row("C reduce-scatter", t_reduce);
  print_ms_row("total execution", t_total);

  double avg = 0;
  for (double v : t_total) avg += v;
  avg /= static_cast<double>(t_total.size());
  std::printf("\n================ CA3DMM algorithm engine ================\n");
  std::printf("* Number of executions  : %d\n", std::max(1, a.ntest));
  std::printf("* Execution time (avg)  : %.2f ms\n", avg * 1e3);
  std::printf("==========================================================\n");
  if (a.validate)
    std::printf("CA3DMM output : %ld error(s)\n", errors);
  return errors == 0 ? 0 : 1;
}
