// Randomized fault-matrix soak: schedules x {kill, straggle, flip} under a
// printed deterministic seed.
//
//   fault_soak <seed> <iterations>
//
// Every iteration draws a problem shape, a process count, and one fault
// from a seeded PRNG, then checks the recovery contract end to end:
//
//   * kill / straggle — ResilientRunner must shrink, replan, and produce a
//     C bit-identical to a clean run at the survivor count;
//   * flip — an ABFT-protected run must complete with C bit-identical to
//     an unflipped protected run (the corruption corrected in flight).
//
// Any violation prints the failing iteration WITH the seed (so CI log lines
// are directly replayable: `fault_soak <seed> <iter+1>`) and exits nonzero.
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "core/ca3dmm.hpp"
#include "linalg/matrix.hpp"
#include "resilience/recovery.hpp"
#include "simmpi/cluster.hpp"

namespace ca3dmm {
namespace {

using resilience::RecoveryReport;
using resilience::ResilientRunner;
using resilience::RetryPolicy;
using simmpi::Cluster;
using simmpi::Comm;
using simmpi::Machine;

struct Shape {
  i64 m, n, k;
};

const Shape kShapes[] = {
    {32, 32, 32}, {48, 24, 36}, {40, 40, 80}, {24, 56, 32}, {64, 16, 48},
};
const int kRankCounts[] = {4, 5, 6, 8};

/// rank_main that replans from world.size(); per-rank C lands in (*out).
std::function<void(Comm&)> pgemm_main(Shape sh, bool abft,
                                      std::vector<std::vector<double>>* out) {
  return [=](Comm& world) {
    const int P = world.size();
    const int me = world.rank();
    Ca3dmmOptions opt;
    opt.abft = abft;
    const Ca3dmmPlan plan = Ca3dmmPlan::make(sh.m, sh.n, sh.k, P, opt);
    const BlockLayout a_nat = plan.a_native();
    const BlockLayout b_nat = plan.b_native();
    const BlockLayout c_nat = plan.c_native();
    std::vector<double> a(static_cast<size_t>(a_nat.local_size(me)));
    std::vector<double> b(static_cast<size_t>(b_nat.local_size(me)));
    i64 pos = 0;
    for (const Rect& r : a_nat.rects_of(me))
      for (i64 i = r.r.lo; i < r.r.hi; ++i)
        for (i64 j = r.c.lo; j < r.c.hi; ++j)
          a[static_cast<size_t>(pos++)] = matrix_entry<double>(7, i, j);
    pos = 0;
    for (const Rect& r : b_nat.rects_of(me))
      for (i64 i = r.r.lo; i < r.r.hi; ++i)
        for (i64 j = r.c.lo; j < r.c.hi; ++j)
          b[static_cast<size_t>(pos++)] = matrix_entry<double>(8, i, j);
    std::vector<double> c(static_cast<size_t>(c_nat.local_size(me)));
    ca3dmm_multiply<double>(world, plan, false, false, a_nat, a.data(), b_nat,
                            b.data(), c_nat, c.data());
    (*out)[static_cast<size_t>(me)] = std::move(c);
  };
}

bool bitwise_equal(const std::vector<std::vector<double>>& x,
                   const std::vector<std::vector<double>>& y, int nranks) {
  for (int r = 0; r < nranks; ++r) {
    const auto& a = x[static_cast<size_t>(r)];
    const auto& b = y[static_cast<size_t>(r)];
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i)
      if (a[i] != b[i]) return false;
  }
  return true;
}

/// One soak iteration; returns true on success.
bool run_iteration(std::uint64_t seed, int iter) {
  std::mt19937_64 rng(seed + static_cast<std::uint64_t>(iter) * 0x9E3779B9);
  const Shape sh = kShapes[rng() % (sizeof(kShapes) / sizeof(kShapes[0]))];
  const int P = kRankCounts[rng() % 4];
  const int fault_kind = static_cast<int>(rng() % 3);

  Machine mach = Machine::unit_test();
  if (fault_kind == 1) mach.ranks_per_node = 2;  // straggle targets a node

  std::printf("iter %3d: shape %lldx%lldx%lld P=%d fault=%s\n", iter,
              (long long)sh.m, (long long)sh.n, (long long)sh.k, P,
              fault_kind == 0   ? "kill"
              : fault_kind == 1 ? "straggle"
                                : "flip");

  if (fault_kind == 2) {
    // Payload flip into a random Cannon channel; protected run must match
    // the clean protected run bit for bit.
    std::vector<std::vector<double>> clean(P), out(P);
    Cluster ref(P, mach);
    ref.run(pgemm_main(sh, true, &clean));

    const int tags[] = {101, 201, 301, 401};
    simmpi::FaultPlan fp;
    fp.flips.push_back({.src = static_cast<int>(rng() % P),
                        .dst = static_cast<int>(rng() % P),
                        .tag = tags[rng() % 4],
                        .nth_match = 1,
                        .offset = static_cast<i64>(rng() % 512),
                        .mask = static_cast<unsigned char>(1u << (rng() % 8))});
    Cluster cl(P, mach);
    cl.set_fault_plan(fp);
    cl.run(pgemm_main(sh, true, &out));
    if (!bitwise_equal(out, clean, P)) {
      std::printf("  FAIL: flip not corrected (corrected=%lld)\n",
                  (long long)cl.aggregate_stats().abft_corrected);
      return false;
    }
    return true;
  }

  // Kill or straggle: recovery must converge to the survivor-count result.
  simmpi::FaultPlan fp;
  int excluded = 0;  // ranks the recovery is expected to drop
  if (fault_kind == 0) {
    const int victim = static_cast<int>(rng() % P);
    fp.kills.push_back(
        {.rank = victim, .at_op = static_cast<i64>(1 + rng() % 4)});
    excluded = 1;
  } else {
    // Straggle node 0: it always holds active ranks (rank 0 is active in
    // every plan), so the 40x compute lag is guaranteed to be visible at a
    // collective. A node holding only idle ranks charges almost no local
    // time and is legitimately undetectable by an arrival-lag policy.
    fp.stragglers.push_back({.node = 0, .factor = 40.0});
    excluded = 2;  // ranks_per_node = 2: node 0 owns ranks {0, 1}
  }
  const int survivors = P - excluded;

  std::vector<std::vector<double>> clean(survivors), out(P);
  Cluster ref(survivors, mach);
  ref.run(pgemm_main(sh, false, &clean));

  ResilientRunner runner(P, mach, RetryPolicy{.max_attempts = 3});
  runner.set_fault_plan(fp);
  if (fault_kind == 1) {
    // At these miniature scales the shared collective time dominates, so
    // the arrival-time ratio between a 40x-slow node and a healthy one
    // bottoms out near 1.3 (48x24x36 P=8); detect on a low ratio with a
    // firm absolute lag floor that natural skew (~us) never reaches.
    simmpi::StragglerPolicy sp;
    sp.enabled = true;
    sp.degrade_factor = 1.25;
    sp.min_lag_s = 1e-4;
    runner.set_straggler_policy(sp);
  }
  const RecoveryReport rep = runner.run(pgemm_main(sh, false, &out));
  if (!rep.ok || rep.final_nranks != survivors) {
    std::printf("  FAIL: recovery ended at %d ranks, expected %d\n",
                rep.final_nranks, survivors);
    return false;
  }
  if (!bitwise_equal(out, clean, survivors)) {
    std::printf("  FAIL: recovered C differs from clean survivor-count C\n");
    return false;
  }
  return true;
}

}  // namespace
}  // namespace ca3dmm

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <seed> <iterations>\n", argv[0]);
    return 2;
  }
  const std::uint64_t seed = std::strtoull(argv[1], nullptr, 0);
  const int iters = std::atoi(argv[2]);
  std::printf("fault_soak seed=%llu iterations=%d\n",
              (unsigned long long)seed, iters);
  for (int i = 0; i < iters; ++i)
    if (!ca3dmm::run_iteration(seed, i)) {
      std::printf("soak FAILED at seed=%llu iter=%d\n",
                  (unsigned long long)seed, i);
      return 1;
    }
  std::printf("soak passed: %d iterations, seed=%llu\n", iters,
              (unsigned long long)seed);
  return 0;
}
