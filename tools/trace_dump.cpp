// trace_dump — run one simulated PGEMM with tracing on and dump the results.
//
//   ./trace_dump <nprocs> <M> <N> <K> [algo] [trace.json]
//
//   algo:       ca3dmm (default) | ca3dmm-summa | cosma | carma | ctf |
//               summa | 2.5d
//   trace.json: Chrome trace-event output path (open in chrome://tracing or
//               https://ui.perfetto.dev). Omit to skip the JSON export.
//
// Prints the per-phase aggregate table, the virtual-time critical path, and
// the prediction-drift join against the analytic cost model. Exits nonzero
// if any phase drifts outside tolerance, so it can serve as a scriptable
// gate. Run with no arguments for a small demonstration configuration.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "costmodel/drift.hpp"
#include "simmpi/trace.hpp"

using namespace ca3dmm;
using costmodel::Algo;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <nprocs> <M> <N> <K> [algo] [trace.json]\n"
               "  algo: ca3dmm | ca3dmm-summa | cosma | carma | ctf | summa "
               "| 2.5d\n",
               argv0);
  std::exit(2);
}

Algo parse_algo(const char* s) {
  if (!std::strcmp(s, "ca3dmm")) return Algo::kCa3dmm;
  if (!std::strcmp(s, "ca3dmm-summa")) return Algo::kCa3dmmSumma;
  if (!std::strcmp(s, "cosma")) return Algo::kCosma;
  if (!std::strcmp(s, "carma")) return Algo::kCarma;
  if (!std::strcmp(s, "ctf")) return Algo::kCtf;
  if (!std::strcmp(s, "summa")) return Algo::kSumma;
  if (!std::strcmp(s, "2.5d")) return Algo::kP25d;
  std::fprintf(stderr, "unknown algorithm '%s'\n", s);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  int P = 16;
  costmodel::Workload w{96, 96, 96};
  Algo algo = Algo::kCa3dmm;
  std::string json_path;
  if (argc != 1) {
    if (argc < 5 || argc > 7) usage(argv[0]);
    P = std::atoi(argv[1]);
    w.m = std::atoll(argv[2]);
    w.n = std::atoll(argv[3]);
    w.k = std::atoll(argv[4]);
    if (argc >= 6) algo = parse_algo(argv[5]);
    if (argc >= 7) json_path = argv[6];
    if (P <= 0 || w.m <= 0 || w.n <= 0 || w.k <= 0) usage(argv[0]);
  }

  simmpi::Cluster cl(P, simmpi::Machine::phoenix_mpi());
  cl.set_trace(true);
  // Uneven shapes legitimately drift (collective max-entry synchronization);
  // the documented engine/model tolerance for them is 15%.
  costmodel::DriftOptions opts;
  const bool even = (w.m % 16 == 0 && w.n % 16 == 0 && w.k % 16 == 0);
  if (!even) opts.rtol = 0.15;

  const costmodel::DriftReport rep = costmodel::check_drift(algo, w, cl, opts);

  std::printf("== %s  m=%lld n=%lld k=%lld  P=%d ==\n\n",
              costmodel::algo_name(algo), static_cast<long long>(w.m),
              static_cast<long long>(w.n), static_cast<long long>(w.k), P);
  std::printf("-- per-phase aggregate --\n%s\n",
              simmpi::format_aggregate_table(simmpi::aggregate_trace(cl))
                  .c_str());
  std::printf("-- critical path --\n%s\n",
              simmpi::format_critical_path(simmpi::critical_path(cl)).c_str());
  std::printf("-- prediction drift (rtol %.3g) --\n%s\n", rep.opts.rtol,
              rep.table().c_str());
  if (!json_path.empty()) {
    simmpi::write_chrome_trace_file(cl, json_path);
    std::printf("trace written to %s\n", json_path.c_str());
  }
  // Even shapes gate every phase; uneven shapes only guarantee total time
  // and peak memory (phase attribution shifts with synchronization skew).
  const bool gate_ok =
      even ? rep.ok() : (!rep.total.flagged && !rep.peak_bytes_flagged);
  if (!gate_ok) {
    std::fprintf(stderr, "DRIFT GATE FAILED\n");
    return 1;
  }
  return 0;
}
