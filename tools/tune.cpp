// tune — warm or inspect the persisted PGEMM tuning database.
//
//   ./tune --db PATH [--warm] [--dump] [--p N]
//          [--shape M,N,K] ... [--backend threads|fibers]
//          [--grid-candidates N] [--top-k N] [--no-validate]
//
//   --db PATH     tuning database file (created if missing)
//   --warm        tune every --shape at P ranks and persist the winners;
//                 shapes whose bucket already holds a fresh entry are
//                 skipped (reload is O(1), no re-search)
//   --dump        print the database contents as a table
//   --p N         rank count to tune for (default 32)
//   --shape M,N,K problem shape; repeatable. Default: the four scaled
//                 problem classes of the small-scale benches
//   --backend     simmpi scheduler backend for validation runs
//   --grid-candidates / --top-k / --no-validate
//                 search-width knobs (see src/tuner/tuner.hpp)
//
// The same file is consumed by EngineConfig::tuning_db and the bench
// binaries' --tuning-db flag; docs/TUNING.md documents the format and the
// versioning rules.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "tuner/db.hpp"
#include "tuner/tuner.hpp"

using namespace ca3dmm;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --db PATH [--warm] [--dump] [--p N]\n"
               "          [--shape M,N,K]... [--backend threads|fibers]\n"
               "          [--grid-candidates N] [--top-k N] [--no-validate]\n",
               argv0);
  std::exit(2);
}

struct Shape {
  i64 m, n, k;
};

void dump(const tuner::TuningDb& db) {
  const auto entries = db.entries();
  std::printf("%s: schema %d, cost model %d, %zu entr%s\n",
              db.path().empty() ? "(unsaved)" : db.path().c_str(),
              tuner::TuningDb::kSchemaVersion, costmodel::kCostModelVersion,
              entries.size(), entries.size() == 1 ? "y" : "ies");
  if (entries.empty()) return;
  std::printf(
      "%-22s %5s %-12s %-22s %2s %12s %12s %12s %7s %6s\n", "bucket(q m,n,k)",
      "P", "grid", "coll(ag,rs,bc,ar)", "ov", "predicted_s", "validated_s",
      "baseline_s", "speedup", "stale");
  for (const tuner::TuningEntry& e : entries) {
    const double speedup =
        e.validated_s > 0 ? e.baseline_s / e.validated_s : 0.0;
    std::printf(
        "%6d,%6d,%6d %7d %-12s %-22s %2s %12.6g %12.6g %12.6g %6.3fx %6s\n",
        e.key.qm, e.key.qn, e.key.qk, e.key.nranks,
        strprintf("%dx%dx%d", e.config.grid.pm, e.config.grid.pn,
                  e.config.grid.pk)
            .c_str(),
        strprintf("%s,%s,%s,%s", tuner::coll_algo_token(e.config.coll.allgather),
                  tuner::coll_algo_token(e.config.coll.reduce_scatter),
                  tuner::coll_algo_token(e.config.coll.bcast),
                  tuner::coll_algo_token(e.config.coll.allreduce))
            .c_str(),
        e.config.overlap ? "y" : "n", e.predicted_s, e.validated_s,
        e.baseline_s, speedup, e.stale ? "yes" : "no");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_path;
  bool warm = false, do_dump = false;
  int P = 32;
  std::vector<Shape> shapes;
  tuner::TunerOptions topt;

  for (int i = 1; i < argc; ++i) {
    const auto value = [&](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (std::strcmp(argv[i], name) == 0) {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      }
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
        return argv[i] + len + 1;
      return nullptr;
    };
    if (const char* v = value("--db")) {
      db_path = v;
    } else if (std::strcmp(argv[i], "--warm") == 0) {
      warm = true;
    } else if (std::strcmp(argv[i], "--dump") == 0) {
      do_dump = true;
    } else if (const char* v = value("--p")) {
      P = std::atoi(v);
    } else if (const char* v = value("--shape")) {
      long long m = 0, n = 0, k = 0;
      if (std::sscanf(v, "%lld,%lld,%lld", &m, &n, &k) != 3 || m <= 0 ||
          n <= 0 || k <= 0) {
        std::fprintf(stderr, "bad --shape '%s' (expected M,N,K)\n", v);
        return 2;
      }
      shapes.push_back({m, n, k});
    } else if (const char* v = value("--backend")) {
      if (std::strcmp(v, "fibers") == 0) {
        topt.backend = simmpi::Cluster::Backend::kFibers;
      } else if (std::strcmp(v, "threads") == 0) {
        topt.backend = simmpi::Cluster::Backend::kThreads;
      } else {
        std::fprintf(stderr, "unrecognized --backend '%s'\n", v);
        return 2;
      }
    } else if (const char* v = value("--grid-candidates")) {
      topt.grid_candidates = std::atoi(v);
    } else if (const char* v = value("--top-k")) {
      topt.top_k = std::atoi(v);
    } else if (std::strcmp(argv[i], "--no-validate") == 0) {
      topt.validate = false;
    } else {
      usage(argv[0]);
    }
  }
  if (db_path.empty() || (!warm && !do_dump)) usage(argv[0]);
  if (P <= 0) usage(argv[0]);
  if (shapes.empty())
    shapes = {{192, 192, 192}, {48, 48, 3072}, {3072, 48, 48}, {384, 384, 24}};

  const simmpi::Machine mach = simmpi::Machine::phoenix_mpi();
  tuner::TuningDb db(db_path);
  db.load();  // missing file is a normal cold start

  if (warm) {
    tuner::Tuner tuner(mach, topt);
    int tuned = 0, skipped = 0;
    for (const Shape& s : shapes) {
      const tuner::TuningKey key = tuner::make_key(s.m, s.n, s.k, P, mach);
      if (const auto existing = db.find(key); existing && !existing->stale) {
        ++skipped;
        continue;
      }
      const tuner::TuneResult r = tuner.tune_into(db, s.m, s.n, s.k, P);
      ++tuned;
      std::printf(
          "tuned %lldx%lldx%lld P=%d: %s grid %dx%dx%d ov=%d "
          "(%.6gs vs heuristic %.6gs; %lld pruned, %lld validated)\n",
          static_cast<long long>(s.m), static_cast<long long>(s.n),
          static_cast<long long>(s.k), P,
          r.winner_is_heuristic ? "heuristic" : "tuned",
          r.entry.config.grid.pm, r.entry.config.grid.pn,
          r.entry.config.grid.pk, r.entry.config.overlap ? 1 : 0,
          r.entry.validated_s > 0 ? r.entry.validated_s : r.entry.predicted_s,
          r.heuristic_s, static_cast<long long>(r.candidates_pruned),
          static_cast<long long>(r.candidates_validated));
    }
    if (!db.save()) {
      std::fprintf(stderr, "cannot write %s\n", db_path.c_str());
      return 1;
    }
    std::printf("warmed %s: %d tuned, %d already fresh\n", db_path.c_str(),
                tuned, skipped);
  }

  if (do_dump) dump(db);
  return 0;
}
